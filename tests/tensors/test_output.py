"""Unit tests for run-length output assembly."""

import numpy as np
import pytest

import repro.lang as fl
from repro.tensors.output import RunBuilder, RunOutput
from repro.util.errors import FormatError, ReproError


class TestRunBuilder:
    def test_merges_adjacent_equal_runs(self):
        builder = RunBuilder(10, fill=0.0)
        builder.append_run(0, 3, 5.0)
        builder.append_run(3, 6, 5.0)
        builder.close()
        assert builder.ends == [6, 10]
        assert builder.values == [5.0, 0.0]

    def test_gaps_filled_with_fill(self):
        builder = RunBuilder(10, fill=0.0)
        builder.append_run(4, 6, 2.0)
        builder.close()
        assert builder.ends == [4, 6, 10]
        assert builder.values == [0.0, 2.0, 0.0]

    def test_out_of_order_append_rejected(self):
        builder = RunBuilder(10, fill=0.0)
        builder.append_run(5, 7, 1.0)
        with pytest.raises(ReproError):
            builder.append_run(2, 4, 1.0)

    def test_empty_append_ignored(self):
        builder = RunBuilder(10, fill=0.0)
        builder.append_run(3, 3, 9.0)
        builder.close()
        assert builder.values == [0.0]

    def test_reset(self):
        builder = RunBuilder(4, fill=0.0)
        builder.append_run(0, 4, 1.0)
        builder.reset()
        builder.close()
        assert builder.values == [0.0]


class TestRunOutput:
    def test_roundtrip_dense_values(self):
        out = RunOutput((2, 6), fill=0.0)
        for row in range(2):
            out.builder.append_run(row * 6, row * 6 + 6, float(row + 1))
        dense = out.to_numpy()
        np.testing.assert_array_equal(dense,
                                      [[1.0] * 6, [2.0] * 6])

    def test_run_crossing_row_boundary_splits(self):
        out = RunOutput((2, 4), fill=0.0)
        out.builder.append_run(2, 6, 7.0)  # covers end of row 0, start of 1
        dense = out.to_numpy()
        np.testing.assert_array_equal(dense, [[0, 0, 7, 7], [7, 7, 0, 0]])

    def test_needs_at_least_one_mode(self):
        with pytest.raises(FormatError):
            RunOutput((), fill=0.0)

    def test_index_count_checked(self):
        out = RunOutput((2, 4))
        with pytest.raises(FormatError):
            out[fl.indices("i")]

    def test_run_count(self):
        out = RunOutput((1, 8), fill=0.0)
        out.builder.append_run(0, 4, 3.0)
        out.builder.append_run(4, 8, 3.0)
        assert out.run_count() == 1  # merged


class TestCompiledRunOutputs:
    def test_copy_through_rle(self):
        src = np.repeat([1.0, 0.0, 4.0], 5)
        A = fl.from_numpy(src, ("rle",), name="A")
        out = RunOutput((15,), fill=0.0, name="out")
        i = fl.indices("i")
        kernel = fl.compile_kernel(
            fl.forall(i, fl.store(out[i], A[i])), instrument=True)
        ops = kernel.run()
        np.testing.assert_array_equal(out.to_numpy(), src)
        assert ops <= 8  # O(runs), not O(elements)

    def test_rerun_resets_builder(self):
        src = np.repeat([2.0, 3.0], 4)
        A = fl.from_numpy(src, ("rle",), name="A")
        out = RunOutput((8,), fill=0.0, name="out")
        i = fl.indices("i")
        kernel = fl.compile_kernel(fl.forall(i, fl.store(out[i], A[i])))
        kernel.run()
        kernel.run()
        np.testing.assert_array_equal(out.to_numpy(), src)

    def test_pointwise_positions_fall_back_to_point_appends(self):
        src = np.array([5.0, 6.0, 7.0])
        A = fl.from_numpy(src, ("dense",), name="A")
        out = RunOutput((3,), fill=0.0, name="out")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.store(out[i], A[i] * 2.0)))
        np.testing.assert_array_equal(out.to_numpy(), src * 2)

    def test_reduction_into_run_output_rejected(self):
        from repro.util.errors import LoweringError

        src = np.ones(4)
        A = fl.from_numpy(src, ("dense",), name="A")
        out = RunOutput((4,), fill=0.0, name="out")
        i = fl.indices("i")
        with pytest.raises(LoweringError):
            fl.execute(fl.forall(i, fl.increment(out[i], A[i])))

    def test_uint8_blend_matches_dense(self):
        img_b = np.repeat(np.array([10, 250], dtype=np.uint8), 6)
        img_c = np.repeat(np.array([30, 40], dtype=np.uint8), 6)
        B = fl.from_numpy(img_b.reshape(1, -1), ("dense", "rle"),
                          name="B", fill=0)
        C = fl.from_numpy(img_c.reshape(1, -1), ("dense", "rle"),
                          name="C", fill=0)
        out = RunOutput((1, 12), fill=0, dtype=np.uint8, name="out")
        i, j = fl.indices("i", "j")
        fl.execute(fl.forall(i, fl.forall(j, fl.store(
            out[i, j], fl.call(fl.ops.ROUND_U8,
                               0.5 * B[i, j] + 0.5 * C[i, j])))))
        expected = np.clip(np.round(0.5 * img_b.astype(float)
                                    + 0.5 * img_c.astype(float)),
                           0, 255).astype(np.uint8)
        np.testing.assert_array_equal(out.to_numpy()[0], expected)


class TestSparseOutput:
    def test_pointwise_product_assembles_intersection(self):
        from repro.tensors.output import SparseOutput

        rng = np.random.default_rng(1)
        a = rng.random(25)
        a[a < 0.6] = 0
        b = rng.random(25)
        b[b < 0.6] = 0
        A = fl.from_numpy(a, ("sparse",), name="A")
        B = fl.from_numpy(b, ("sparse",), name="B")
        out = SparseOutput((25,), name="out")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.store(out[i], A[i] * B[i])))
        np.testing.assert_allclose(out.to_numpy(), a * b)
        assert out.nnz() == np.count_nonzero(a * b)

    def test_runtime_zero_results_are_skipped(self):
        from repro.tensors.output import SparseOutput

        vec = np.array([1.0, -1.0, 2.0])
        A = fl.from_numpy(vec, ("dense",), name="A")
        out = SparseOutput((3,), name="out")
        i = fl.indices("i")
        # A[i] + A[i] * -1 ... use (A[i] - 1) so index 0 lands on fill.
        fl.execute(fl.forall(i, fl.store(out[i], A[i] - 1.0)))
        np.testing.assert_allclose(out.to_numpy(), vec - 1.0)
        assert out.nnz() == 2  # the exact zero is elided

    def test_matrix_rows(self):
        from repro.tensors.output import SparseOutput

        mat = np.zeros((3, 6))
        mat[0, 2] = 4.0
        mat[2, 5] = 5.0
        M = fl.from_numpy(mat, ("dense", "sparse"), name="M")
        out = SparseOutput((3, 6), name="out")
        i, j = fl.indices("i", "j")
        fl.execute(fl.forall(i, fl.forall(j, fl.store(
            out[i, j], M[i, j]))))
        np.testing.assert_allclose(out.to_numpy(), mat)

    def test_out_of_order_append_rejected(self):
        from repro.tensors.output import SparseBuilder

        builder = SparseBuilder(10, 0.0)
        builder.append(5, 1.0)
        with pytest.raises(ReproError):
            builder.append(5, 2.0)

    def test_reduction_rejected(self):
        from repro.tensors.output import SparseOutput
        from repro.util.errors import LoweringError

        A = fl.from_numpy(np.ones(4), ("dense",), name="A")
        out = SparseOutput((4,), name="out")
        i = fl.indices("i")
        with pytest.raises(LoweringError):
            fl.execute(fl.forall(i, fl.increment(out[i], A[i])))
