"""Tests for tensor format conversion."""

import numpy as np
import pytest

import repro.lang as fl
from repro.tensors.convert import convert, dropfills
from repro.util.errors import FormatError

SOURCES = ["dense", "sparse", "band", "vbl", "rle", "bitmap", "ragged",
           "packbits"]
KERNEL_TARGETS = ["dense", "sparse", "rle"]
HOST_TARGETS = ["band", "vbl", "bitmap", "ragged", "packbits"]


def example(seed=0, n=20):
    rng = np.random.default_rng(seed)
    vec = np.zeros(n)
    vec[4:9] = rng.integers(1, 4, size=5).astype(float)
    vec[14] = 2.0
    return vec


@pytest.mark.parametrize("src", SOURCES)
@pytest.mark.parametrize("dst", KERNEL_TARGETS)
def test_kernel_conversion_roundtrip(src, dst):
    vec = example()
    tensor = fl.from_numpy(vec, (src,), name="T")
    converted = convert(tensor, (dst,))
    np.testing.assert_array_equal(converted.to_numpy(), vec)


@pytest.mark.parametrize("dst", HOST_TARGETS)
def test_host_conversion_roundtrip(dst):
    vec = example(seed=1)
    tensor = fl.from_numpy(vec, ("sparse",), name="T")
    converted = convert(tensor, (dst,))
    np.testing.assert_array_equal(converted.to_numpy(), vec)


def test_matrix_conversion():
    rng = np.random.default_rng(2)
    mat = rng.random((5, 9))
    mat[mat < 0.6] = 0.0
    tensor = fl.from_numpy(mat, ("dense", "vbl"), name="M")
    converted = convert(tensor, ("dense", "sparse"))
    np.testing.assert_array_equal(converted.to_numpy(), mat)
    layout = [type(level).__name__ for level in converted.levels]
    assert layout == ["DenseLevel", "SparseListLevel"]


def test_rle_target_produces_runlength_level():
    vec = np.repeat([1.0, 0.0, 3.0], 6)
    tensor = fl.from_numpy(vec, ("dense",), name="T")
    converted = convert(tensor, ("rle",))
    assert type(converted.levels[0]).__name__ == "RunLengthLevel"
    np.testing.assert_array_equal(converted.to_numpy(), vec)
    # 18 elements, 3 runs.
    assert len(converted.levels[0].right) == 3


def test_single_format_string_broadcasts():
    mat = np.eye(4)
    tensor = fl.from_numpy(mat, ("dense", "dense"), name="I")
    converted = convert(tensor, "sparse")
    # outer sparse is a host-side conversion; values survive
    np.testing.assert_array_equal(converted.to_numpy(), mat)


def test_dropfills():
    vec = np.array([0.0, 5.0, 0.0, 0.0, 7.0])
    tensor = fl.from_numpy(vec, ("dense",), name="T")
    compressed = dropfills(tensor)
    assert type(compressed.levels[0]).__name__ == "SparseListLevel"
    assert len(compressed.levels[0].idx) == 2
    np.testing.assert_array_equal(compressed.to_numpy(), vec)


def test_nonzero_fill_preserved():
    vec = np.full(10, 9.0)
    vec[3] = 1.0
    tensor = fl.from_numpy(vec, ("sparse",), fill=9.0, name="T")
    converted = convert(tensor, ("sparse",))
    assert converted.fill == 9.0
    np.testing.assert_array_equal(converted.to_numpy(), vec)


def test_format_count_checked():
    tensor = fl.from_numpy(np.zeros((2, 2)), ("dense", "dense"))
    with pytest.raises(FormatError):
        convert(tensor, ("dense",))


def test_scalar_rejected():
    with pytest.raises(FormatError):
        convert(fl.Scalar(name="C"), ())
