"""Format signatures and kernel-buffer maps: the tensor half of the
structural-key contract."""

import numpy as np

import repro.lang as fl
from repro.tensors.output import RunOutput, SparseOutput


def vec(fmt, n=10, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.random(n)
    data[data < 0.5] = 0.0
    return fl.from_numpy(data, (fmt,), name="T")


class TestTensorSignature:
    def test_equal_across_data(self):
        assert (vec("sparse", seed=1).format_signature()
                == vec("sparse", seed=2).format_signature())

    def test_name_not_in_signature(self):
        a = vec("sparse")
        b = fl.from_numpy(a.to_numpy(), ("sparse",), name="other")
        assert a.format_signature() == b.format_signature()

    def test_format_differs(self):
        assert (vec("sparse").format_signature()
                != vec("dense").format_signature())

    def test_shape_differs(self):
        assert (vec("dense", n=10).format_signature()
                != vec("dense", n=11).format_signature())

    def test_dtype_differs(self):
        a = fl.from_numpy(np.arange(4, dtype=np.float64), ("dense",))
        b = fl.from_numpy(np.arange(4, dtype=np.int64), ("dense",))
        assert a.format_signature() != b.format_signature()

    def test_fill_differs(self):
        data = np.full(6, 2.0)
        a = fl.from_numpy(data, ("rle",), fill=0.0)
        b = fl.from_numpy(data, ("rle",), fill=2.0)
        assert a.format_signature() != b.format_signature()

    def test_numpy_fill_normalized(self):
        data = np.zeros(6)
        a = fl.from_numpy(data, ("sparse",), fill=np.float64(0.0))
        b = fl.from_numpy(data, ("sparse",), fill=0.0)
        assert a.format_signature() == b.format_signature()

    def test_scalar_signature(self):
        assert (fl.Scalar(name="a").format_signature()
                == fl.Scalar(name="b").format_signature())

    def test_signature_is_hashable(self):
        hash(vec("vbl").format_signature())


class TestKernelBuffers:
    def test_tensor_roles_match_buffers(self):
        t = vec("sparse")
        assert t.kernel_buffers() == t.buffers()
        assert set(t.kernel_buffers()) == {"lvl0_pos", "lvl0_idx", "val"}

    def test_roles_stable_across_same_format(self):
        assert (set(vec("vbl", seed=1).kernel_buffers())
                == set(vec("vbl", seed=2).kernel_buffers()))

    def test_run_output(self):
        out = RunOutput((4, 6), fill=0, dtype=np.uint8)
        assert out.kernel_buffers() == {"builder": out.builder}
        other = RunOutput((4, 6), fill=0, dtype=np.uint8, name="x")
        assert out.format_signature() == other.format_signature()
        smaller = RunOutput((4, 5), fill=0, dtype=np.uint8)
        assert out.format_signature() != smaller.format_signature()

    def test_sparse_output(self):
        out = SparseOutput((3, 3), fill=0.0)
        assert out.kernel_buffers() == {"builder": out.builder}
        assert (out.format_signature()
                != RunOutput((3, 3), fill=0.0).format_signature())
