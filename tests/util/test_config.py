"""The unified configuration resolver: one precedence rule, proven.

The package-wide contract is ``per-call kwarg > fl.configure(...) >
FL_* env > default``.  These tests prove it layer by layer for the
resolver itself, then end-to-end for the four axes the acceptance
criteria name — store, backend, tune, and service URL — driving real
``compile_kernel`` / ``active_store`` / ``active_client`` calls, not
just ``resolve``.
"""

import numpy as np
import pytest

import repro.lang as fl
from repro.compiler.kernel import kernel_cache
from repro.service.client import active_client, reset_clients
from repro.store import active_store
from repro.util import config


def dot_program(n=60, seed=0):
    rng = np.random.default_rng(seed)
    a = np.zeros(n)
    a[rng.choice(n, max(3, n // 8), replace=False)] = 1.0
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(rng.random(n), ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i])), C, a


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    for option in config.OPTIONS.values():
        monkeypatch.delenv(option.env, raising=False)
    config.clear()
    kernel_cache().clear()
    reset_clients()
    yield
    config.clear()
    kernel_cache().clear()
    reset_clients()


# -- the resolver ----------------------------------------------------------


def test_default_layer():
    assert config.resolve("backend") == "python"
    assert config.resolve("tune") == "off"
    assert config.resolve("store_path") is None
    assert config.resolve("service_url") is None
    assert config.source("backend") == "default"


def test_env_beats_default(monkeypatch):
    monkeypatch.setenv("FL_KERNEL_BACKEND", "c")
    monkeypatch.setenv("FL_KERNEL_TUNE", "apply")
    assert config.resolve("backend") == "c"
    assert config.resolve("tune") == "apply"
    assert config.source("backend") == "env"


def test_empty_env_reads_as_unset(monkeypatch):
    monkeypatch.setenv("FL_KERNEL_BACKEND", "")
    monkeypatch.setenv("FL_KERNEL_STORE", "")
    assert config.resolve("backend") == "python"
    assert config.resolve("store_path") is None
    assert config.source("backend") == "default"


def test_configure_beats_env(monkeypatch):
    monkeypatch.setenv("FL_KERNEL_BACKEND", "c")
    fl.configure(backend="python")
    assert config.resolve("backend") == "python"
    assert config.source("backend") == "configure"


def test_kwarg_beats_configure(monkeypatch):
    monkeypatch.setenv("FL_KERNEL_BACKEND", "python")
    fl.configure(backend="python")
    assert config.resolve("backend", override="c") == "c"


def test_unset_drops_the_configure_layer(monkeypatch):
    monkeypatch.setenv("FL_KERNEL_TUNE", "apply")
    fl.configure(tune="off")
    assert config.resolve("tune") == "off"
    fl.configure(tune=config.UNSET)
    assert config.resolve("tune") == "apply"


def test_none_is_a_value_not_unset(monkeypatch):
    monkeypatch.setenv("FL_KERNEL_STORE", "/tmp/somewhere")
    fl.configure(store_path=None)
    # Explicit None disables the store even with the env set ...
    assert config.resolve("store_path") is None
    assert config.source("store_path") == "configure"
    # ... and only UNSET restores env-driven behavior.
    config.configure(store_path=config.UNSET)
    assert config.resolve("store_path") == "/tmp/somewhere"


def test_unknown_option_rejected():
    with pytest.raises(ValueError, match="unknown configuration"):
        fl.configure(no_such_option=1)
    with pytest.raises(ValueError, match="unknown configuration"):
        config.resolve("no_such_option")


def test_choices_validated():
    with pytest.raises(ValueError, match="backend must be"):
        fl.configure(backend="rust")
    with pytest.raises(ValueError, match="tune must be"):
        fl.configure(tune="always")


def test_env_values_parsed(monkeypatch):
    monkeypatch.setenv("FL_KERNEL_OPT_LEVEL", "1")
    monkeypatch.setenv("FL_SERVICE_TIMEOUT_S", "0.25")
    monkeypatch.setenv("FL_SERVICE_RETRIES", "3")
    assert config.resolve("opt_level") == 1
    assert config.resolve("service_timeout_s") == 0.25
    assert config.resolve("service_retries") == 3


def test_runtime_config_reports_every_option():
    snapshot = fl.runtime_config()
    assert set(snapshot) == set(config.OPTIONS)
    assert snapshot["backend"] == "python"


def test_runtime_config_detailed_names_the_layer(monkeypatch):
    monkeypatch.setenv("FL_KERNEL_TUNE", "apply")
    fl.configure(backend="c")
    detailed = fl.runtime_config(detailed=True)
    assert detailed["backend"] == {
        "value": "c", "source": "configure",
        "env": "FL_KERNEL_BACKEND"}
    assert detailed["tune"]["source"] == "env"
    assert detailed["opt_level"]["source"] == "default"


def test_snapshot_restore_roundtrip():
    fl.configure(backend="c", tune="apply")
    before = config.snapshot()
    fl.configure(backend="python", tune=config.UNSET)
    config.restore(before)
    assert config.resolve("backend") == "c"
    assert config.resolve("tune") == "apply"


# -- end-to-end: the four named axes ---------------------------------------


def test_store_precedence_end_to_end(tmp_path, monkeypatch):
    env_dir = tmp_path / "env_store"
    cfg_dir = tmp_path / "cfg_store"
    call_dir = tmp_path / "call_store"
    monkeypatch.setenv("FL_KERNEL_STORE", str(env_dir))
    assert active_store().root == str(env_dir)
    fl.configure(store_path=str(cfg_dir))
    assert active_store().root == str(cfg_dir)
    # The per-call kwarg wins over both: the entry lands in call_dir.
    fl.compile_kernel(dot_program()[0], store=str(call_dir))
    assert fl.KernelStore(str(call_dir)).stats()["entries"] == 1
    assert fl.KernelStore(str(cfg_dir)).stats()["entries"] == 0


def test_backend_precedence_end_to_end(monkeypatch):
    monkeypatch.setenv("FL_KERNEL_BACKEND", "c")
    fl.configure(backend="python")
    kernel = fl.compile_kernel(dot_program()[0], cache=False)
    assert kernel.backend == "python"  # configure beat the env
    kernel = fl.compile_kernel(dot_program()[0], cache=False,
                               backend="c")
    assert kernel.backend == "c"  # the kwarg beat configure


def test_tune_precedence_end_to_end(monkeypatch):
    from repro.compiler.kernel import normalize_tune

    monkeypatch.setenv("FL_KERNEL_TUNE", "apply")
    assert normalize_tune(None) == "apply"
    fl.configure(tune="off")
    assert normalize_tune(None) == "off"
    assert normalize_tune("apply") == "apply"  # kwarg wins


def test_service_url_precedence_end_to_end(monkeypatch):
    monkeypatch.setenv("FL_SERVICE_URL", "http://env:1")
    assert active_client().url == "http://env:1"
    fl.configure(service_url="http://cfg:2")
    assert active_client().url == "http://cfg:2"
    assert active_client("http://call:3/").url == "http://call:3"
    # remote=False disables the tier outright, all layers set.
    assert active_client(False) is None
