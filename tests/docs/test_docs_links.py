"""Dead-link check over ``docs/`` and the README.

Every intra-repo markdown link — ``[text](relative/path)``,
optionally with a ``#fragment`` — must point at a file or directory
that exists, resolved relative to the *linking* document.  External
links (``http(s)://``, ``mailto:``) and pure in-page fragments are
out of scope.  CI runs this as the ``docs-check`` step, so a rename
that orphans a doc link fails the PR that did the renaming.
"""

import os
import re

import pytest

REPO = os.path.normpath(os.path.join(os.path.dirname(__file__),
                                     "..", ".."))

#: ``[text](target)`` — target captured lazily so titles/fragments
#: stay inside the match.  Images (``![alt](...)``) match too, which
#: is what we want.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def _documents():
    docs = [os.path.join(REPO, "README.md")]
    docs_dir = os.path.join(REPO, "docs")
    for dirpath, _, files in os.walk(docs_dir):
        docs.extend(os.path.join(dirpath, f)
                    for f in sorted(files) if f.endswith(".md"))
    return docs


def _strip_code(text):
    """Drop fenced code blocks and inline code spans — link syntax
    inside them is example text, not a link."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def _links(path):
    with open(path, encoding="utf-8") as handle:
        text = _strip_code(handle.read())
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        yield target


DOCS = _documents()


def test_doc_tree_is_nonempty():
    assert len(DOCS) >= 9           # README + the docs/ tree


@pytest.mark.parametrize(
    "doc", DOCS, ids=[os.path.relpath(d, REPO) for d in DOCS])
def test_intra_repo_links_resolve(doc):
    broken = []
    for target in _links(doc):
        path = target.split("#", 1)[0]
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(doc), path))
        if not os.path.exists(resolved):
            broken.append("%s -> %s (missing %s)"
                          % (os.path.relpath(doc, REPO), target,
                             os.path.relpath(resolved, REPO)))
    assert not broken, "broken intra-repo links:\n" + "\n".join(broken)


@pytest.mark.parametrize(
    "doc", DOCS, ids=[os.path.relpath(d, REPO) for d in DOCS])
def test_links_stay_inside_the_repo(doc):
    for target in _links(doc):
        path = target.split("#", 1)[0]
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(doc), path))
        assert resolved.startswith(REPO), (
            "%s links outside the repo: %s" % (doc, target))
