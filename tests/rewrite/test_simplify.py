"""Unit tests for the expression rewriter (Figure 5 rules)."""

import pytest

from repro.ir import Call, Literal, Load, MISSING, Var, build, ops
from repro.rewrite import simplify_expr
from repro.util.errors import ReproError


def raw(op, *args):
    """Build a Call without smart-constructor simplification."""
    return Call(op, list(args))


class TestAnnihilation:
    def test_mul_by_zero(self):
        assert simplify_expr(raw(ops.MUL, Var("x"), Literal(0))) == Literal(0)

    def test_mul_by_zero_deep(self):
        expr = raw(ops.ADD, Var("y"), raw(ops.MUL, Var("x"), Literal(0)))
        assert simplify_expr(expr) == Var("y")

    def test_and_false(self):
        expr = raw(ops.AND, Var("p"), Literal(False))
        assert simplify_expr(expr) == Literal(False)

    def test_or_true(self):
        expr = raw(ops.OR, Var("p"), Literal(True))
        assert simplify_expr(expr) == Literal(True)


class TestIdentity:
    def test_add_zero(self):
        assert simplify_expr(raw(ops.ADD, Var("x"), Literal(0))) == Var("x")

    def test_mul_one(self):
        assert simplify_expr(raw(ops.MUL, Var("x"), Literal(1))) == Var("x")

    def test_or_false(self):
        assert simplify_expr(raw(ops.OR, Var("p"), Literal(False))) == Var("p")


class TestFlattening:
    def test_nested_add_flattens(self):
        expr = raw(ops.ADD, Var("a"), raw(ops.ADD, Var("b"), Var("c")))
        out = simplify_expr(expr)
        assert out == Call(ops.ADD, [Var("a"), Var("b"), Var("c")])

    def test_constants_combine_across_nesting(self):
        expr = raw(ops.ADD, Literal(1), raw(ops.ADD, Var("x"), Literal(2)))
        out = simplify_expr(expr)
        assert out == Call(ops.ADD, [Literal(3), Var("x")])


class TestNegation:
    def test_double_negation(self):
        expr = raw(ops.NEG, raw(ops.NEG, Var("a")))
        assert simplify_expr(expr) == Var("a")

    def test_mul_of_negation_hoists(self):
        expr = raw(ops.MUL, Var("a"), raw(ops.NEG, Var("b")))
        out = simplify_expr(expr)
        assert out == Call(ops.NEG, [Call(ops.MUL, [Var("a"), Var("b")])])

    def test_zero_minus(self):
        expr = raw(ops.SUB, Literal(0), Var("b"))
        assert simplify_expr(expr) == Call(ops.NEG, [Var("b")])

    def test_sub_self_is_not_rewritten(self):
        # sub has no self-comparison rule; it stays (sound, just not folded).
        expr = raw(ops.SUB, Var("a"), Var("a"))
        assert simplify_expr(expr) == expr


class TestMissing:
    def test_mul_missing(self):
        expr = raw(ops.MUL, Var("x"), Literal(MISSING))
        assert simplify_expr(expr) == Literal(MISSING)

    def test_coalesce_drops_missing(self):
        expr = raw(ops.COALESCE, Literal(MISSING), Var("x"))
        assert simplify_expr(expr) == Var("x")

    def test_coalesce_of_expression_with_missing_inside(self):
        inner = raw(ops.MUL, Literal(MISSING), Var("f"))
        expr = raw(ops.COALESCE, inner, Literal(0))
        assert simplify_expr(expr) == Literal(0)

    def test_coalesce_keeps_runtime_values(self):
        expr = raw(ops.COALESCE, Var("a"), Var("b"))
        assert simplify_expr(expr) == expr


class TestComparisons:
    def test_eq_self(self):
        assert simplify_expr(raw(ops.EQ, Var("i"), Var("i"))) == Literal(True)

    def test_ne_self(self):
        assert simplify_expr(raw(ops.NE, Var("i"), Var("i"))) == Literal(False)

    def test_eq_different_not_folded(self):
        expr = raw(ops.EQ, Var("i"), Var("j"))
        assert simplify_expr(expr) == expr

    def test_literal_comparison_folds(self):
        assert simplify_expr(raw(ops.LT, Literal(2), Literal(3))) == Literal(True)

    def test_eq_on_loads(self):
        load = Load("idx", Var("p"))
        assert simplify_expr(raw(ops.EQ, load, load)) == Literal(True)


class TestMisc:
    def test_ifelse_literal(self):
        expr = raw(ops.IFELSE, Literal(True), Var("a"), Var("b"))
        assert simplify_expr(expr) == Var("a")

    def test_not_not(self):
        expr = raw(ops.NOT, raw(ops.NOT, Var("p")))
        assert simplify_expr(expr) == Var("p")

    def test_min_folding(self):
        assert simplify_expr(raw(ops.MIN, Literal(4), Literal(7))) == Literal(4)

    def test_rejects_non_expr(self):
        with pytest.raises(ReproError):
            simplify_expr(42)

    def test_custom_rule(self):
        def rule_square_of_var(expr):
            if (isinstance(expr, Call) and expr.op.name == "pow"
                    and expr.args[1] == Literal(2)):
                return build.times(expr.args[0], expr.args[0])
            return None

        from repro.rewrite.rules import DEFAULT_EXPR_RULES

        expr = raw(ops.POW, Var("x"), Literal(2))
        out = simplify_expr(expr, DEFAULT_EXPR_RULES + (rule_square_of_var,))
        assert out == Call(ops.MUL, [Var("x"), Var("x")])

    def test_dot_product_style_expression(self):
        # 2 * x * 0 * anything collapses entirely.
        expr = raw(ops.MUL, Literal(2), Var("x"), Literal(0), Load("B", Var("i")))
        assert simplify_expr(expr) == Literal(0)
