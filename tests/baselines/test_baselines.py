"""Unit tests for the baseline kernels and the reference interpreter."""

import numpy as np
import pytest

import repro.lang as fl
from repro.baselines import dense_ref, twofinger
from repro.baselines.reference import interpret
from repro.util.errors import ReproError


class TestTwoFinger:
    def test_dot_merge_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.random(50); a[a < 0.6] = 0
        b = rng.random(50); b[b < 0.6] = 0
        a_idx, a_val = twofinger.coords_of(a)
        b_idx, b_val = twofinger.coords_of(b)
        value, steps = twofinger.dot_merge(a_idx, a_val, b_idx, b_val)
        assert value == pytest.approx(float(a @ b))
        assert steps <= len(a_idx) + len(b_idx)

    def test_dot_merge_disjoint(self):
        value, steps = twofinger.dot_merge(
            np.array([0, 1]), np.array([1.0, 1.0]),
            np.array([5, 6]), np.array([1.0, 1.0]))
        assert value == 0.0

    def test_spmspv_merge(self):
        rng = np.random.default_rng(1)
        mat = rng.random((6, 9)); mat[mat < 0.5] = 0
        vec = rng.random(9); vec[vec < 0.5] = 0
        pos, idx, val = twofinger.csr_of(mat)
        x_idx, x_val = twofinger.coords_of(vec)
        y, _ = twofinger.spmspv_merge(pos, idx, val, x_idx, x_val, 6)
        np.testing.assert_allclose(y, mat @ vec)

    def test_gallop_equals_merge(self):
        rng = np.random.default_rng(2)
        a_idx = np.sort(rng.choice(1000, 12, replace=False))
        b_idx = np.sort(rng.choice(1000, 300, replace=False))
        merge_count, merge_steps = twofinger.intersect_merge(a_idx, b_idx)
        gallop_count, gallop_steps = twofinger.intersect_gallop(a_idx,
                                                                b_idx)
        assert merge_count == gallop_count
        assert gallop_steps < merge_steps

    def test_triangle_counts_agree(self):
        from repro.workloads import graphs

        adj = graphs.erdos_renyi_adjacency(30, 0.2, seed=3)
        pos, idx = graphs.adjacency_to_csr(adj)
        expected = graphs.triangle_count_reference(adj)
        merge_count, _ = twofinger.triangle_count_merge(pos, idx, 30)
        gallop_count, _ = twofinger.triangle_count_gallop(pos, idx, 30)
        assert merge_count == expected
        assert gallop_count == expected


class TestDenseRef:
    def test_convolution_loops_match_numpy(self):
        rng = np.random.default_rng(4)
        grid = rng.random((10, 12))
        filt = rng.random((3, 3))
        np.testing.assert_allclose(
            dense_ref.convolve2d_loops(grid, filt),
            dense_ref.convolve2d_numpy(grid, filt), atol=1e-12)

    def test_alpha_blend_loops_match_numpy(self):
        rng = np.random.default_rng(5)
        img_b = rng.integers(0, 255, (6, 7)).astype(np.uint8)
        img_c = rng.integers(0, 255, (6, 7)).astype(np.uint8)
        np.testing.assert_array_equal(
            dense_ref.alpha_blend_loops(img_b, img_c, 0.3, 0.7),
            dense_ref.alpha_blend_numpy(img_b, img_c, 0.3, 0.7))

    def test_all_pairs_loops_match_numpy(self):
        rng = np.random.default_rng(6)
        images = rng.integers(0, 9, (4, 25)).astype(float)
        np.testing.assert_allclose(
            dense_ref.all_pairs_loops(images),
            dense_ref.all_pairs_numpy(images), atol=1e-9)

    def test_spmv_loops(self):
        rng = np.random.default_rng(7)
        mat = rng.random((5, 6))
        vec = rng.random(6)
        np.testing.assert_allclose(dense_ref.spmv_loops(mat, vec),
                                   mat @ vec)


class TestInterpreter:
    def test_spmv(self):
        rng = np.random.default_rng(8)
        mat = rng.random((4, 6)); mat[mat < 0.4] = 0
        vec = rng.random(6)
        A = fl.from_numpy(mat, ("dense", "sparse"), name="A")
        x = fl.from_numpy(vec, ("dense",), name="x")
        y = fl.zeros(4, name="y")
        i, j = fl.indices("i", "j")
        prog = fl.forall(i, fl.forall(j, fl.increment(
            y[i], A[i, j] * x[j])))
        result = interpret(prog).result_for(y)
        np.testing.assert_allclose(result, mat @ vec)

    def test_sieve_semantics(self):
        y = fl.zeros(4, name="y")
        i = fl.indices("i")
        prog = fl.forall(i, fl.sieve(fl.lt(i, 2), fl.store(y[i], 1.0)),
                         ext=(0, 4))
        result = interpret(prog).result_for(y)
        np.testing.assert_allclose(result, [1, 1, 0, 0])

    def test_where_resets_temporary(self):
        mat = np.ones((2, 3))
        A = fl.from_numpy(mat, ("dense", "dense"), name="A")
        O = fl.zeros(2, name="O")
        o = fl.Scalar(name="o")
        i, j = fl.indices("i", "j")
        inner = fl.forall(j, fl.increment(o[()], A[i, j]))
        prog = fl.forall(i, fl.where(fl.store(O[i], o[()]), inner))
        result = interpret(prog).result_for(O)
        np.testing.assert_allclose(result, [3.0, 3.0])

    def test_out_of_bounds_without_permit_raises(self):
        A = fl.from_numpy(np.ones(3), ("dense",), name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        prog = fl.forall(i, fl.increment(C[()], fl.access(
            A, fl.offset(i, -2))), ext=(0, 3))
        with pytest.raises(ReproError):
            interpret(prog)

    def test_permit_pads_with_missing(self):
        A = fl.from_numpy(np.array([1.0, 2.0, 3.0]), ("dense",),
                          name="A")
        out = fl.zeros(3, name="out")
        i = fl.indices("i")
        prog = fl.forall(i, fl.store(out[i], fl.coalesce(fl.access(
            A, fl.permit(fl.offset(i, -2))), 9.0)))
        result = interpret(prog).result_for(out)
        np.testing.assert_allclose(result, [3.0, 9.0, 9.0])

    def test_reduction_ops(self):
        vec = np.array([3.0, 7.0, 1.0])
        A = fl.from_numpy(vec, ("dense",), name="A")
        m = fl.Scalar(name="m")
        i = fl.indices("i")
        prog = fl.forall(i, fl.reduce_into(m[()], fl.ops.MAX, A[i]))
        assert interpret(prog).result_for(m) == 7.0

    def test_unbound_variable_error(self):
        C = fl.Scalar(name="C")
        from repro.cin.nodes import Assign
        from repro.ir import Var, ops as _ops

        prog = Assign(C[()], _ops.ADD, Var("ghost"))
        with pytest.raises(ReproError):
            interpret(prog)
