"""The remote tier in ``compile_kernel``: read-through, write-behind.

A warm service turns a cold process's compiles into wire fetches; a
cold service learns every kernel the fleet compiles via the push
queue.  These tests drive real compiles against a real service on an
ephemeral port and watch both sides' counters.
"""

import numpy as np
import pytest

import repro.lang as fl
from repro.compiler.kernel import kernel_cache
from repro.service import KernelService
from repro.service.client import (
    reset_clients,
    reset_service_stats,
    service_stats,
)
from repro.store import KernelStore, reset_store_config
from repro.util import config


@pytest.fixture(autouse=True)
def clean_state():
    kernel_cache().clear()
    reset_store_config()
    reset_clients()
    reset_service_stats()
    config.clear()
    yield
    kernel_cache().clear()
    reset_store_config()
    reset_clients()
    reset_service_stats()
    config.clear()


@pytest.fixture
def service(tmp_path):
    with KernelService(tmp_path / "server_store") as svc:
        yield svc


def dot_program(n=50, seed=0):
    rng = np.random.default_rng(seed)
    A = fl.from_numpy(rng.random(n), ("dense",), name="A")
    B = fl.from_numpy(rng.random(n), ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i])), C


def test_miss_compiles_and_pushes(service):
    program, C = dot_program()
    kernel = fl.compile_kernel(program, remote=service.url,
                               store=False)
    assert not kernel.from_cache
    service.queue.join()
    stats = service_stats()
    assert stats["remote_misses"] == 1
    assert stats["remote_pushes"] == 1
    # The push rode the queue into the service's store.
    assert service.store.stats()["entries"] == 1
    assert service.stats()["pushes"] == 1


def test_remote_hit_skips_the_compile(service):
    program, C = dot_program()
    fl.compile_kernel(program, remote=service.url, store=False)
    service.queue.join()
    kernel_cache().clear()
    reset_service_stats()

    # A "fresh process": no memory, no disk — just the service.
    program2, C2 = dot_program(seed=1)
    kernel = fl.compile_kernel(program2, remote=service.url,
                               store=False)
    assert kernel.from_cache
    assert service_stats()["remote_hits"] == 1
    assert service.stats()["hits"] == 1
    # And the rebuilt kernel computes the same function.
    kernel.run()
    remote_value = C2.value
    program3, C3 = dot_program(seed=1)  # identical data, fresh compile
    fl.execute(program3, cache=False)
    assert remote_value == C3.value


def test_remote_hit_promotes_into_memory(service):
    program, _ = dot_program()
    fl.compile_kernel(program, remote=service.url, store=False)
    service.queue.join()
    kernel_cache().clear()
    fl.compile_kernel(dot_program(seed=1)[0], remote=service.url,
                      store=False)
    hits_before = service.stats()["hits"]
    kernel = fl.compile_kernel(dot_program(seed=2)[0],
                               remote=service.url, store=False)
    assert kernel.from_cache
    assert service.stats()["hits"] == hits_before  # memory, no wire


def test_remote_hit_writes_behind_into_local_store(service, tmp_path):
    program, _ = dot_program()
    fl.compile_kernel(program, remote=service.url, store=False)
    service.queue.join()
    kernel_cache().clear()

    local = KernelStore(tmp_path / "local_store")
    kernel = fl.compile_kernel(dot_program(seed=1)[0],
                               remote=service.url, store=local)
    assert kernel.from_cache
    assert local.stats()["entries"] == 1
    # Third process: the local disk tier now answers before the wire.
    kernel_cache().clear()
    hits_before = service.stats()["hits"]
    kernel = fl.compile_kernel(dot_program(seed=2)[0],
                               remote=service.url, store=local)
    assert kernel.from_cache
    assert service.stats()["hits"] == hits_before


def test_narrowed_cache_modes_skip_the_remote_tier(service):
    program, _ = dot_program()
    fl.compile_kernel(program, remote=service.url, store=False)
    service.queue.join()
    kernel_cache().clear()
    # cache="memory" and cache="disk" ask for locality; cache=False
    # asks for a fresh compile.  None may touch the wire.
    for mode in ("memory", "disk", False):
        kernel = fl.compile_kernel(dot_program(seed=1)[0], cache=mode,
                                   remote=service.url, store=False)
        assert not kernel.from_cache, mode
        kernel_cache().clear()
    assert service.stats()["hits"] == 0


def test_remote_false_disables_a_configured_service(service):
    fl.configure(service_url=service.url)
    program, _ = dot_program()
    kernel = fl.compile_kernel(program, remote=False, store=False)
    assert not kernel.from_cache
    assert service.stats()["pushes"] == 0
    assert service_stats()["remote_misses"] == 0


def test_configured_service_url_is_picked_up(service):
    fl.configure(service_url=service.url)
    program, _ = dot_program()
    fl.compile_kernel(program, store=False)
    service.queue.join()
    kernel_cache().clear()
    kernel = fl.compile_kernel(dot_program(seed=1)[0], store=False)
    assert kernel.from_cache
    assert service.stats()["hits"] == 1


def test_batch_engine_reports_remote_hits(service):
    from repro.cin.analyze import program_tensors

    program, _ = dot_program()
    datasets = [program_tensors(dot_program(seed=s)[0])
                for s in (1, 2)]
    kernel = fl.compile_kernel(
        program, options=fl.CompileOptions(store=False,
                                           remote=service.url))
    with fl.KernelPool(kernel, executor="serial") as pool:
        pool.map(datasets)
        stats = pool.stats()
    assert "remote_hits" in stats
    assert stats["remote_hits"] == 0  # serial executor: no workers
