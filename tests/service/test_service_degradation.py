"""Degraded-network behavior: the remote tier can never break a compile.

A dead, hanging, or lying kernel service must cost at most one warning
and a timeout per cooldown window — every compile still succeeds
locally and produces bit-identical outputs.  Driven through a refused
port, the chaos engine's ``service_unreachable`` fault point, a
monkeypatched corrupt response, and a real mid-run service kill.
"""

import logging

import numpy as np
import pytest

import repro.lang as fl
from repro import chaos
from repro.compiler.kernel import kernel_cache
from repro.service import KernelService
from repro.service.client import (
    ServiceClient,
    active_client,
    reset_clients,
    reset_service_stats,
    service_stats,
)
from repro.store import reset_store_config
from repro.util import config
from repro.util.errors import ServiceUnreachableError, TransientError

#: Nothing listens here: connection refused, instantly.
DEAD_URL = "http://127.0.0.1:9"


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    from repro.service import client as client_mod

    kernel_cache().clear()
    reset_store_config()
    reset_clients()
    reset_service_stats()
    config.clear()
    # Fast failures: no retries, short timeouts, no lingering cooldown
    # leaking into the next test.
    config.configure(service_timeout_s=0.5, service_retries=0)
    monkeypatch.setattr(client_mod, "DOWN_COOLDOWN_S", 30.0)
    yield
    kernel_cache().clear()
    reset_store_config()
    reset_clients()
    reset_service_stats()
    config.clear()


def dot_program(n=50, seed=0):
    rng = np.random.default_rng(seed)
    A = fl.from_numpy(rng.random(n), ("dense",), name="A")
    B = fl.from_numpy(rng.random(n), ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i])), C


def test_unreachable_error_is_transient_by_taxonomy():
    assert issubclass(ServiceUnreachableError, TransientError)
    client = ServiceClient(DEAD_URL)
    with pytest.raises(ServiceUnreachableError):
        client._request("/healthz")


def test_dead_service_degrades_bit_identically(caplog):
    program, C = dot_program()
    with caplog.at_level(logging.WARNING, logger="repro.service"):
        kernel = fl.compile_kernel(program, remote=DEAD_URL,
                                   store=False)
    assert not kernel.from_cache
    kernel.run()
    degraded_value = C.value

    program2, C2 = dot_program()  # identical data, no remote tier
    fl.execute(program2, cache=False)
    assert degraded_value == C2.value

    stats = service_stats()
    assert stats["remote_errors"] >= 1
    assert stats["remote_hits"] == 0


def test_warn_once_then_silent_cooldown(caplog):
    with caplog.at_level(logging.WARNING, logger="repro.service"):
        for seed in range(3):
            fl.compile_kernel(dot_program(seed=seed)[0],
                              remote=DEAD_URL, store=False,
                              cache=True)
            kernel_cache().clear()
    warnings = [record for record in caplog.records
                if record.levelno >= logging.WARNING]
    assert len(warnings) == 1  # one warning, not one per compile
    # Compiles 2 and 3 skipped the wire inside the cooldown window.
    assert service_stats()["remote_degraded"] >= 2


def test_chaos_fault_point_registered():
    assert "service_unreachable" in chaos.fault_points()


def test_chaos_injects_unreachable(tmp_path):
    """The fault point fires at the request boundary, so the whole
    degrade path runs against a perfectly healthy service."""
    with KernelService(tmp_path / "store") as service:
        fl.compile_kernel(dot_program()[0], remote=service.url,
                          store=False)
        service.queue.join()
        kernel_cache().clear()
        reset_clients()
        reset_service_stats()
        program, C = dot_program(seed=1)
        with chaos.chaos("service_unreachable", p=1.0):
            kernel = fl.compile_kernel(program, remote=service.url,
                                       store=False)
        # The warm entry was unreachable: compiled locally anyway.
        assert not kernel.from_cache
        assert service_stats()["remote_errors"] >= 1
        kernel.run()
        value = C.value
        # Chaos off, cooldown cleared: the same compile now hits.
        reset_clients()
        kernel_cache().clear()
        program2, C2 = dot_program(seed=1)
        kernel2 = fl.compile_kernel(program2, remote=service.url,
                                    store=False)
        assert kernel2.from_cache
        kernel2.run()
        assert C2.value == value


def test_corrupt_response_reads_as_miss(monkeypatch, caplog):
    monkeypatch.setattr(ServiceClient, "_request",
                        lambda self, path, data=None: (200, b"{ bad"))
    program, C = dot_program()
    with caplog.at_level(logging.WARNING, logger="repro.service"):
        kernel = fl.compile_kernel(program, remote=DEAD_URL,
                                   store=False)
    assert not kernel.from_cache
    stats = service_stats()
    assert stats["remote_errors"] >= 1
    assert stats["remote_misses"] >= 1
    assert stats["remote_hits"] == 0
    # A lying service is a miss, not an outage: no cooldown engaged.
    assert active_client(DEAD_URL).available()
    kernel.run()
    program2, C2 = dot_program()
    fl.execute(program2, cache=False)
    assert C.value == C2.value


def test_key_mismatch_rejected_as_stale(tmp_path):
    """An entry served under the wrong key (stale service, wrong
    version axes) must be rejected client-side, not trusted."""
    with KernelService(tmp_path / "store") as service:
        fl.compile_kernel(dot_program()[0], remote=service.url,
                          store=False)
        service.queue.join()
        kernel_cache().clear()
        reset_service_stats()
        # Tamper: serve every entry under a mutated key.
        real_request = ServiceClient._request

        def tampered(self, path, data=None):
            status, body = real_request(self, path, data)
            if path.startswith("/kernels/") and status == 200:
                import json

                payload = json.loads(body)
                payload["key"] = dict(payload["key"],
                                      registry_version=-999)
                body = json.dumps(payload).encode()
            return status, body

        try:
            ServiceClient._request = tampered
            reset_clients()
            kernel = fl.compile_kernel(dot_program(seed=1)[0],
                                       remote=service.url,
                                       store=False)
        finally:
            ServiceClient._request = real_request
        assert not kernel.from_cache  # rejected, compiled locally
        stats = service_stats()
        assert stats["remote_errors"] >= 1
        assert stats["remote_hits"] == 0


def test_service_killed_mid_run_degrades(tmp_path):
    """Kill the service between compiles: later compiles fall back to
    local compilation with bit-identical outputs."""
    service = KernelService(tmp_path / "store")
    service.start()
    url = service.url
    fl.configure(service_url=url)
    program, C = dot_program()
    fl.compile_kernel(program, store=False)
    service.queue.join()
    kernel_cache().clear()
    # Warm fetch works ...
    kernel = fl.compile_kernel(dot_program(seed=1)[0], store=False)
    assert kernel.from_cache
    # ... then the service dies mid-run.
    service.close()
    kernel_cache().clear()
    reset_service_stats()
    program3, C3 = dot_program(seed=1)
    degraded = fl.compile_kernel(program3, store=False)
    assert not degraded.from_cache  # local compile, not a crash
    assert service_stats()["remote_errors"] >= 1
    degraded.run()
    value = C3.value
    program4, C4 = dot_program(seed=1)
    fl.execute(program4, cache=False)
    assert value == C4.value


def test_push_failure_never_breaks_the_compile():
    program, C = dot_program()
    kernel = fl.compile_kernel(program, remote=DEAD_URL, store=False)
    assert not kernel.from_cache
    kernel.run()  # the kernel is fully usable
    assert service_stats()["remote_pushes"] == 0
