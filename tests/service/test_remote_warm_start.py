"""The fleet warm-start proof, as a tier-1 test: a *fresh process*
with an **empty local store** but a warm kernel service completes all
six figure benchmarks with zero local compiles, a remote hit rate
>= 0.9, and outputs bit-identical to cold compiles.

Three actors:

* the **cold** child warms the service's backing store directly (six
  compiles, six write-behinds) — it stands in for the fleet members
  that compiled before us;
* the pytest process serves that store over HTTP
  (:class:`~repro.service.KernelService` on an ephemeral port);
* the **remote** child starts with an empty local store and
  ``FL_SERVICE_URL`` pointed at the service: every compile must be
  served over the wire and written behind into its local store.

Both children are pristine subprocesses (not the pytest process): the
store key includes the op-registry version, and other tests
legitimately register ops, so only a fresh interpreter state matches
what a real fleet process would compute.
"""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.service import KernelService

_COLD_CHILD = r"""
import hashlib, json, os, sys
from repro.bench.figures import warm_start_programs
from repro.bench.harness import _snapshot_outputs
from repro.compiler.kernel import compile_kernel
from repro.store import KernelStore

report = {"figures": {}}
for figure, label, make_program, opts in warm_start_programs():
    program = make_program()
    kernel = compile_kernel(program, **opts)
    kernel.run()
    digest = hashlib.sha256()
    for snap in _snapshot_outputs(program):
        digest.update(snap.tobytes())
    report["figures"][figure] = {
        "from_cache": kernel.from_cache,
        "hash": digest.hexdigest(),
    }
report["stats"] = KernelStore(os.environ["FL_KERNEL_STORE"]).stats()
print(json.dumps(report))
"""

_REMOTE_CHILD = r"""
import hashlib, json, os, sys
from repro.bench.figures import warm_start_programs
from repro.bench.harness import _snapshot_outputs
from repro.compiler.kernel import compile_kernel
from repro.service.client import service_stats
from repro.store import KernelStore

report = {"figures": {}}
for figure, label, make_program, opts in warm_start_programs():
    program = make_program()
    kernel = compile_kernel(program, **opts)
    kernel.run()
    digest = hashlib.sha256()
    for snap in _snapshot_outputs(program):
        digest.update(snap.tobytes())
    report["figures"][figure] = {
        "from_cache": kernel.from_cache,
        "hash": digest.hexdigest(),
    }
report["service"] = service_stats()
report["local_store"] = KernelStore(
    os.environ["FL_KERNEL_STORE"]).stats()
print(json.dumps(report))
"""


def _run_child(script, env_extra):
    src = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("FL_SERVICE_URL", None)
    env.update(env_extra)
    result = subprocess.run(
        [sys.executable, "-c", script], env=env, timeout=300,
        capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def cold_and_remote(tmp_path_factory):
    server_store = tmp_path_factory.mktemp("server_store")
    client_store = tmp_path_factory.mktemp("client_store")
    cold = _run_child(_COLD_CHILD,
                      {"FL_KERNEL_STORE": str(server_store)})
    with KernelService(str(server_store)) as service:
        remote = _run_child(_REMOTE_CHILD, {
            "FL_KERNEL_STORE": str(client_store),
            "FL_SERVICE_URL": service.url,
        })
        server_side = service.stats()
    return cold, remote, server_side


def test_cold_child_warmed_the_service_store(cold_and_remote):
    cold, _, _ = cold_and_remote
    assert len(cold["figures"]) == 6
    assert not any(f["from_cache"] for f in cold["figures"].values())
    assert cold["stats"]["entries"] == 6


def test_remote_child_compiles_zero_kernels(cold_and_remote):
    cold, remote, _ = cold_and_remote
    figures = remote["figures"]
    assert set(figures) == set(cold["figures"])
    # Every figure came off the wire: zero local compiles ...
    assert all(f["from_cache"] for f in figures.values()), figures
    # ... at a remote hit rate >= 0.9 (the acceptance bar) ...
    stats = remote["service"]
    lookups = stats["remote_hits"] + stats["remote_misses"]
    assert lookups >= 6
    assert stats["remote_hits"] / lookups >= 0.9, stats
    assert stats["remote_errors"] == 0
    # ... and its local store saw zero hits (it started empty).
    assert remote["local_store"]["hits"] == 0


def test_remote_outputs_bit_identical_to_cold(cold_and_remote):
    cold, remote, _ = cold_and_remote
    for figure, entry in remote["figures"].items():
        assert entry["hash"] == cold["figures"][figure]["hash"], figure


def test_write_behind_filled_the_local_store(cold_and_remote):
    _, remote, _ = cold_and_remote
    # Every remote hit was written behind: the next process on this
    # machine warm-starts from disk without touching the wire.
    assert remote["local_store"]["entries"] == 6


def test_server_side_counters_agree(cold_and_remote):
    _, remote, server_side = cold_and_remote
    assert server_side["hits"] == remote["service"]["remote_hits"]
    assert server_side["hit_rate"] >= 0.9
