"""The kernel service's HTTP surface: routes, queue, stats schema.

Drives a real :class:`~repro.service.KernelService` on an ephemeral
port through raw ``urllib`` requests — the same wire a fleet client
uses — and checks each route's contract: entry serving with the
recorded key, digest validation, the async compile queue's dedup, the
pack route's name hygiene, and the ``stats.json``-schema counters.
"""

import base64
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro.lang as fl
from repro.compiler.kernel import kernel_cache
from repro.service import KernelService
from repro.store import (
    entry_digest,
    meta_for_artifact,
    reset_store_config,
    write_pack,
)


@pytest.fixture(autouse=True)
def clean_state():
    kernel_cache().clear()
    reset_store_config()
    yield
    kernel_cache().clear()
    reset_store_config()


@pytest.fixture
def service(tmp_path):
    packs = tmp_path / "packs"
    packs.mkdir()
    with KernelService(tmp_path / "store",
                       packs_dir=str(packs)) as svc:
        yield svc


def dot_program(n=50, seed=0):
    rng = np.random.default_rng(seed)
    A = fl.from_numpy(rng.random(n), ("dense",), name="A")
    B = fl.from_numpy(rng.random(n), ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i]))


def seed_entry(service, n=50):
    """Compile one kernel straight into the service's store; returns
    ``(digest, meta, spec)``."""
    kernel = fl.compile_kernel(dot_program(n=n), cache=False)
    meta = meta_for_artifact(kernel.artifact)
    spec = kernel.artifact.to_spec()
    service.store.save_spec(meta, spec)
    return entry_digest(meta), meta, spec


def get(service, path):
    try:
        with urllib.request.urlopen(service.url + path,
                                    timeout=5) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def post(service, path, payload):
    request = urllib.request.Request(
        service.url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def test_healthz(service):
    status, body = get(service, "/healthz")
    payload = json.loads(body)
    assert status == 200
    assert payload["ok"] is True
    assert payload["store"] == service.store.root


def test_unknown_routes_404(service):
    assert get(service, "/nope")[0] == 404
    assert post(service, "/nope", {})[0] == 404


def test_get_kernel_serves_entry_with_recorded_key(service):
    digest, meta, spec = seed_entry(service)
    status, body = get(service, "/kernels/" + digest)
    payload = json.loads(body)
    assert status == 200
    assert payload["key"] == meta
    assert payload["spec"]["name"] == spec["name"]
    assert payload["so"] is None or isinstance(
        base64.b64decode(payload["so"]), bytes)


def test_get_kernel_miss_and_malformed(service):
    assert get(service, "/kernels/" + "0" * 40)[0] == 404
    assert get(service, "/kernels/not-a-digest")[0] == 400
    assert get(service, "/kernels/" + "Z" * 40)[0] == 400
    stats = service.stats()
    assert stats["misses"] == 1  # malformed digests are not misses
    assert stats["hits"] == 0


def test_post_compile_queues_and_dedups(service):
    kernel = fl.compile_kernel(dot_program(n=60), cache=False)
    entry = {"key": meta_for_artifact(kernel.artifact),
             "spec": kernel.artifact.to_spec()}
    status, body = post(service, "/compile", entry)
    first = json.loads(body)
    assert status == 202
    assert first["queued"] is True
    assert first["digest"] == entry_digest(entry["key"])
    service.queue.join()
    # The queue rebuilt and stored the entry; a re-push dedups.
    assert service.store.stats()["entries"] == 1
    status, body = post(service, "/compile", entry)
    assert status == 202
    assert json.loads(body)["queued"] is False
    counters = service.queue.counters()
    assert counters["compiled"] == 1
    assert counters["deduped"] == 1
    assert counters["errors"] == 0
    # The stored entry is now servable.
    assert get(service, "/kernels/" + first["digest"])[0] == 200


def test_post_compile_rejects_garbage(service):
    assert post(service, "/compile", {"nope": 1})[0] == 400
    assert post(service, "/compile", {"key": {}, "spec": "text"})[0] \
        == 400
    request = urllib.request.Request(
        service.url + "/compile", data=b"{ not json",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            status = response.status
    except urllib.error.HTTPError as exc:
        status = exc.code
    assert status == 400
    assert service.queue.counters()["queued"] == 0


def test_queue_rejects_specs_that_do_not_rebuild(service):
    kernel = fl.compile_kernel(dot_program(n=70), cache=False)
    spec = dict(kernel.artifact.to_spec())
    spec["source"] = "this is not python ("
    status, _ = post(service, "/compile",
                     {"key": meta_for_artifact(kernel.artifact),
                      "spec": spec})
    assert status == 202  # accepted for the queue ...
    service.queue.join()
    # ... but rejected at rebuild: never stored, counted as an error.
    assert service.store.stats()["entries"] == 0
    assert service.queue.counters()["errors"] == 1


def test_pack_route(service, tmp_path):
    kernel = fl.compile_kernel(dot_program(), cache=False)
    pack_path = tmp_path / "packs" / "kernels.flpack"
    write_pack(str(pack_path),
               [{"key": meta_for_artifact(kernel.artifact),
                 "spec": kernel.artifact.to_spec()}])
    status, body = get(service, "/packs/kernels.flpack")
    assert status == 200
    assert body == pack_path.read_bytes()
    assert get(service, "/packs/missing.flpack")[0] == 404
    assert get(service, "/packs/kernels.zip")[0] == 404
    assert get(service, "/packs/..%2Fsecrets.flpack")[0] == 404
    assert service.stats()["pack_downloads"] == 1


def test_stats_schema(service):
    digest, _, _ = seed_entry(service)
    get(service, "/kernels/" + digest)
    get(service, "/kernels/" + "0" * 40)
    stats = json.loads(get(service, "/stats")[1])
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["hit_rate"] == 0.5
    # The same shape stats.json consumers already parse, plus the
    # queue and the backing store's own counters.
    for key in ("pushes", "pack_downloads", "queue_depth",
                "queue_queued", "queue_deduped", "queue_compiled",
                "queue_errors"):
        assert key in stats, key
    assert stats["store"]["entries"] == 1
