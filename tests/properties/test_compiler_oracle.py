"""Property-based tests: compiled kernels == reference interpreter.

Hypothesis drives random vector structures, formats, protocols, and
modifier parameters through the full compiler and cross-checks every
result against the naive CIN interpreter.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.lang as fl
from repro.baselines.reference import interpret
from repro.fuzz.strategies import FORMATS_1D as FORMATS
from repro.fuzz.strategies import structured_vector


@settings(max_examples=60)
@given(a=structured_vector(), b=structured_vector(),
       fmt_a=st.sampled_from(FORMATS), fmt_b=st.sampled_from(FORMATS))
def test_dot_product_matches_interpreter(a, b, fmt_a, fmt_b):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    A = fl.from_numpy(a, (fmt_a,), name="A")
    B = fl.from_numpy(b, (fmt_b,), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    prog = fl.forall(i, fl.increment(C[()], A[i] * B[i]))
    expected = interpret(prog).result_for(C)
    fl.execute(prog)
    assert C.value == pytest.approx(float(expected), abs=1e-9)


@settings(max_examples=40)
@given(a=structured_vector(),
       proto_a=st.sampled_from(["walk", "gallop"]),
       proto_b=st.sampled_from(["walk", "gallop"]),
       b=structured_vector())
def test_protocol_choice_never_changes_results(a, b, proto_a, proto_b):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("sparse",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    markers = {"walk": fl.walk, "gallop": fl.gallop}
    prog = fl.forall(i, fl.increment(
        C[()],
        fl.access(A, markers[proto_a](i)) * fl.access(B, markers[proto_b](i))))
    expected = interpret(prog).result_for(C)
    fl.execute(prog)
    assert C.value == pytest.approx(float(expected), abs=1e-9)


@settings(max_examples=40)
@given(vec=structured_vector(), fmt=st.sampled_from(FORMATS),
       delta=st.integers(-6, 6))
def test_offset_permit_matches_interpreter(vec, fmt, delta):
    n = len(vec)
    A = fl.from_numpy(vec, (fmt,), name="A")
    out = fl.zeros(n, name="out")
    i = fl.indices("i")
    prog = fl.forall(i, fl.store(out[i], fl.coalesce(
        fl.access(A, fl.permit(fl.offset(i, delta))), 0.0)))
    expected = interpret(prog).result_for(out)
    fl.execute(prog)
    np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-9)


@settings(max_examples=40)
@given(vec=structured_vector(max_len=20), fmt=st.sampled_from(FORMATS),
       data=st.data())
def test_window_matches_interpreter(vec, fmt, data):
    n = len(vec)
    lo = data.draw(st.integers(0, n - 1))
    hi = data.draw(st.integers(lo, n))
    A = fl.from_numpy(vec, (fmt,), name="A")
    S = fl.Scalar(name="S")
    i = fl.indices("i")
    prog = fl.forall(i, fl.increment(S[()], fl.access(
        A, fl.window(i, lo, hi))), ext=(0, hi - lo))
    expected = interpret(prog).result_for(S)
    fl.execute(prog)
    assert S.value == pytest.approx(float(expected), abs=1e-9)


@settings(max_examples=30)
@given(rows=st.integers(1, 6), cols=st.integers(1, 10),
       fmt=st.sampled_from(["sparse", "vbl", "rle", "band", "dense"]),
       data=st.data())
def test_spmv_matches_interpreter(rows, cols, fmt, data):
    density = data.draw(st.floats(0.0, 1.0))
    seed = data.draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    mat = rng.random((rows, cols))
    mat[rng.random((rows, cols)) > density] = 0.0
    vec = rng.random(cols)
    vec[rng.random(cols) > 0.5] = 0.0
    A = fl.from_numpy(mat, ("dense", fmt), name="A")
    x = fl.from_numpy(vec, ("sparse",), name="x")
    y = fl.zeros(rows, name="y")
    i, j = fl.indices("i", "j")
    prog = fl.forall(i, fl.forall(j, fl.increment(y[i], A[i, j] * x[j])))
    expected = interpret(prog).result_for(y)
    fl.execute(prog)
    np.testing.assert_allclose(y.to_numpy(), expected, atol=1e-9)


@settings(max_examples=30)
@given(vec=structured_vector(max_len=16),
       fmt=st.sampled_from(FORMATS),
       op_name=st.sampled_from(["max", "min", "add"]))
def test_reductions_match_interpreter(vec, fmt, op_name):
    A = fl.from_numpy(vec, (fmt,), name="A")
    S = fl.Scalar(name="S")
    i = fl.indices("i")
    prog = fl.forall(i, fl.reduce_into(S[()], fl.ops.get_op(op_name),
                                       A[i]))
    expected = interpret(prog).result_for(S)
    fl.execute(prog)
    assert S.value == pytest.approx(float(expected), abs=1e-9)


@settings(max_examples=30)
@given(vec=structured_vector(max_len=18), fmt=st.sampled_from(FORMATS))
def test_roundtrip_through_any_format(vec, fmt):
    tensor = fl.from_numpy(vec, (fmt,), name="T")
    np.testing.assert_array_equal(tensor.to_numpy(), vec)
