"""Second round of property tests: structural invariants.

These check algebraic laws of the system itself: union vs intersection
coiteration, modifier composition, conversion round-trips, and the
instrumentation invariant (work never exceeds the dense loop for
conjunctions).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.lang as fl
from repro.baselines.reference import interpret
from repro.fuzz.strategies import vector_pair
from repro.tensors.convert import convert

FORMATS = ["dense", "sparse", "band", "vbl", "rle", "bitmap", "ragged"]


@settings(max_examples=50)
@given(pair=vector_pair(), fmt_a=st.sampled_from(FORMATS),
       fmt_b=st.sampled_from(FORMATS))
def test_union_coiteration_matches_interpreter(pair, fmt_a, fmt_b):
    a, b = pair
    A = fl.from_numpy(a, (fmt_a,), name="A")
    B = fl.from_numpy(b, (fmt_b,), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    prog = fl.forall(i, fl.increment(C[()], A[i] + B[i]))
    expected = interpret(prog).result_for(C)
    fl.execute(prog)
    assert C.value == pytest.approx(float(expected), abs=1e-9)


@settings(max_examples=40)
@given(pair=vector_pair(),
       d1=st.integers(-4, 4), d2=st.integers(-4, 4))
def test_offset_composition(pair, d1, d2):
    """offset(offset(i, d1), d2) == offset(i, d1 + d2)."""
    a, _ = pair
    A = fl.from_numpy(a, ("sparse",), name="A")
    i = fl.indices("i")

    def run(idx_expr):
        out = fl.zeros(len(a), name="out")
        prog = fl.forall(i, fl.store(out[i], fl.coalesce(
            fl.access(A, fl.permit(idx_expr)), 0.0)))
        fl.execute(prog)
        return out.to_numpy()

    nested = run(fl.offset(fl.offset(i, d1), d2))
    flat = run(fl.offset(i, d1 + d2))
    np.testing.assert_allclose(nested, flat)


@settings(max_examples=40)
@given(pair=vector_pair(), src=st.sampled_from(FORMATS),
       dst=st.sampled_from(["dense", "sparse", "rle"]))
def test_conversion_preserves_values(pair, src, dst):
    a, _ = pair
    tensor = fl.from_numpy(a, (src,), name="T")
    converted = convert(tensor, (dst,))
    np.testing.assert_array_equal(converted.to_numpy(), a)


@settings(max_examples=40)
@given(pair=vector_pair(), fmt=st.sampled_from(FORMATS))
def test_conjunctive_work_never_exceeds_dense(pair, fmt):
    """Structure can only remove work from an intersection."""
    a, b = pair
    A = fl.from_numpy(a, (fmt,), name="A")
    B = fl.from_numpy(b, ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    prog = fl.forall(i, fl.increment(C[()], A[i] * B[i]))
    kernel = fl.compile_kernel(prog, instrument=True)
    work = kernel.run()
    # Dense x dense does len(a) updates; structured operands may add
    # coiteration overhead but bounded by a small constant per element.
    assert work <= 3 * len(a) + 2
    assert C.value == pytest.approx(float(a @ b), abs=1e-9)


@settings(max_examples=30)
@given(pair=vector_pair(max_len=16),
       lo=st.integers(0, 5), width=st.integers(0, 8))
def test_window_equals_numpy_slice(pair, lo, width):
    a, _ = pair
    hi = min(len(a), lo + width)
    lo = min(lo, hi)
    if hi <= lo:
        return
    A = fl.from_numpy(a, ("sparse",), name="A")
    out = fl.zeros(hi - lo, name="out")
    i = fl.indices("i")
    fl.execute(fl.forall(i, fl.store(out[i], fl.access(
        A, fl.window(i, lo, hi)))))
    np.testing.assert_allclose(out.to_numpy(), a[lo:hi])


@settings(max_examples=30)
@given(pair=vector_pair(), fmt=st.sampled_from(FORMATS))
def test_scalar_accumulator_isolated_between_runs(pair, fmt):
    """Kernel reruns must not accumulate across invocations."""
    a, _ = pair
    A = fl.from_numpy(a, (fmt,), name="A")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    kernel = fl.compile_kernel(fl.forall(i, fl.increment(C[()], A[i])))
    kernel.run()
    first = C.value
    kernel.run()
    assert C.value == first
