"""Property tests over random two-mode format combinations.

Random matrices with random per-mode formats (including sparse outer
levels, exercising absent-fiber paths) must round-trip and compute
identically to the reference interpreter, under random protocols.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.lang as fl
from repro.baselines.reference import interpret
from repro.fuzz.strategies import FORMATS_MATRIX_INNER as INNER_FORMATS
from repro.fuzz.strategies import FORMATS_OUTER as OUTER_FORMATS
from repro.fuzz.strategies import random_matrix


@settings(max_examples=50)
@given(mat=random_matrix(), outer=st.sampled_from(OUTER_FORMATS),
       inner=st.sampled_from(INNER_FORMATS))
def test_matrix_roundtrip(mat, outer, inner):
    tensor = fl.from_numpy(mat, (outer, inner), name="M")
    np.testing.assert_array_equal(tensor.to_numpy(), mat)


@settings(max_examples=50)
@given(mat=random_matrix(), outer=st.sampled_from(OUTER_FORMATS),
       inner=st.sampled_from(INNER_FORMATS), data=st.data())
def test_matrix_sum_matches_interpreter(mat, outer, inner, data):
    A = fl.from_numpy(mat, (outer, inner), name="A")
    C = fl.Scalar(name="C")
    i, j = fl.indices("i", "j")
    prog = fl.forall(i, fl.forall(j, fl.increment(C[()], A[i, j])))
    expected = interpret(prog).result_for(C)
    fl.execute(prog)
    assert C.value == pytest.approx(float(expected), abs=1e-9)


@settings(max_examples=40)
@given(mat=random_matrix(max_rows=5, max_cols=8),
       inner_a=st.sampled_from(INNER_FORMATS),
       inner_b=st.sampled_from(INNER_FORMATS),
       data=st.data())
def test_elementwise_matrix_product(mat, inner_a, inner_b, data):
    seed = data.draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    other = np.round(rng.random(mat.shape), 2)
    other[rng.random(mat.shape) > 0.4] = 0.0
    A = fl.from_numpy(mat, ("dense", inner_a), name="A")
    B = fl.from_numpy(other, ("dense", inner_b), name="B")
    C = fl.Scalar(name="C")
    i, j = fl.indices("i", "j")
    prog = fl.forall(i, fl.forall(j, fl.increment(
        C[()], A[i, j] * B[i, j])))
    expected = interpret(prog).result_for(C)
    fl.execute(prog)
    assert C.value == pytest.approx(float(expected), abs=1e-9)


@settings(max_examples=30)
@given(mat=random_matrix(max_rows=4, max_cols=8),
       proto=st.sampled_from(["walk", "gallop"]))
def test_spmspv_random_protocols(mat, proto):
    rng = np.random.default_rng(7)
    vec = np.round(rng.random(mat.shape[1]), 2)
    vec[rng.random(mat.shape[1]) > 0.4] = 0.0
    A = fl.from_numpy(mat, ("dense", "sparse"), name="A")
    x = fl.from_numpy(vec, ("sparse",), name="x")
    y = fl.zeros(mat.shape[0], name="y")
    marker = {"walk": fl.walk, "gallop": fl.gallop}[proto]
    i, j = fl.indices("i", "j")
    prog = fl.forall(i, fl.forall(j, fl.increment(
        y[i], fl.access(A, i, marker(j)) * fl.access(x, marker(j)))))
    fl.execute(prog)
    np.testing.assert_allclose(y.to_numpy(), mat @ vec, atol=1e-9)


class TestProtocolSupport:
    """Formats must reject protocols they cannot honor, cleanly."""

    @pytest.mark.parametrize("fmt", ["band", "ragged", "rle",
                                     "packbits"])
    def test_gallop_unsupported(self, fmt):
        from repro.compiler.context import Context
        from repro.ir import Literal
        from repro.util.errors import ProtocolError

        tensor = fl.from_numpy(np.zeros(6), (fmt,), name="T")
        with pytest.raises(ProtocolError):
            tensor.levels[0].unfurl(Context(), Literal(0), "gallop")

    @pytest.mark.parametrize("fmt", ["sparse", "vbl"])
    def test_gallop_supported(self, fmt):
        from repro.compiler.context import Context
        from repro.ir import Literal

        tensor = fl.from_numpy(np.zeros(6), (fmt,), name="T")
        tensor.levels[0].unfurl(Context(), Literal(0), "gallop")

    def test_locate_on_dense_and_bitmap_only(self):
        from repro.compiler.context import Context
        from repro.ir import Literal
        from repro.util.errors import ProtocolError

        dense = fl.from_numpy(np.zeros(6), ("dense",), name="D")
        dense.levels[0].unfurl(Context(), Literal(0), "locate")
        sparse = fl.from_numpy(np.zeros(6), ("sparse",), name="S")
        with pytest.raises(ProtocolError):
            sparse.levels[0].unfurl(Context(), Literal(0), "locate")
