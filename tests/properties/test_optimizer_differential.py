"""Differential tests: the optimizer never changes results.

Hypothesis drives randomized CIN programs through the compiler at
``opt_level=0`` (lowered code emitted untouched) and at the default
level (folding, LICM, CSE, vectorization) and cross-checks outputs.

Two regimes:

* *integer-valued* float data — every intermediate is exactly
  representable, so reassociating a reduction (``_np.dot`` sums
  pairwise, the scalar loop sums left to right) cannot round
  differently and the outputs must be **bit-identical**;
* *real* float data — reassociation may round differently in the last
  ulp, so outputs must agree to a tight tolerance.

The instrumented op count must be *exactly* preserved at every level
in both regimes (the vectorizer scales counters by the trip count).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.lang as fl
from repro.fuzz.strategies import integer_vector

FORMATS = ["dense", "sparse", "band", "vbl", "rle", "bitmap"]
LEVELS = (0, 1, 2)


def run_at_levels(make_program, outputs_of):
    """Outputs and op counts per opt level, over identical data."""
    results = {}
    for level in LEVELS:
        program = make_program()
        n_ops = fl.execute(program, instrument=True, opt_level=level)
        results[level] = (outputs_of(program), n_ops)
    return results


def assert_bit_identical(results):
    base_outs, base_ops = results[0]
    for level in LEVELS[1:]:
        outs, n_ops = results[level]
        assert n_ops == base_ops, \
            "op count changed at opt_level=%d" % level
        for left, right in zip(base_outs, outs):
            np.testing.assert_array_equal(left, right)


@settings(max_examples=50)
@given(a=integer_vector(), b=integer_vector(),
       fmt_a=st.sampled_from(FORMATS), fmt_b=st.sampled_from(FORMATS))
def test_dot_product_bit_identical(a, b, fmt_a, fmt_b):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    captured = {}

    def make_program():
        A = fl.from_numpy(a, (fmt_a,), name="A")
        B = fl.from_numpy(b, (fmt_b,), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        captured["C"] = C
        return fl.forall(i, fl.increment(C[()], A[i] * B[i]))

    results = run_at_levels(make_program,
                            lambda prog: [np.asarray(captured["C"].value)])
    assert_bit_identical(results)
    assert float(results[0][0][0]) == float(a @ b)


@settings(max_examples=50)
@given(a=integer_vector(), b=integer_vector(),
       fmt=st.sampled_from(FORMATS),
       op_name=st.sampled_from(["add", "mul", "min", "max"]))
def test_elementwise_store_bit_identical(a, b, fmt, op_name):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    op = fl.ops.get_op(op_name)
    captured = {}

    def make_program():
        A = fl.from_numpy(a, ("dense",), name="A")
        B = fl.from_numpy(b, (fmt,), name="B")
        out = fl.zeros(n, name="out")
        i = fl.indices("i")
        captured["out"] = out
        return fl.forall(i, fl.store(out[i],
                                     fl.call(op, A[i], B[i])))

    results = run_at_levels(
        make_program, lambda prog: [captured["out"].to_numpy()])
    assert_bit_identical(results)


@settings(max_examples=40)
@given(data=st.data())
def test_spmv_bit_identical(data):
    rows = data.draw(st.integers(1, 6))
    cols = data.draw(st.integers(1, 10))
    fmt = data.draw(st.sampled_from(["sparse", "vbl", "dense", "rle"]))
    mat = np.array(data.draw(st.lists(
        st.lists(st.integers(-3, 3), min_size=cols, max_size=cols),
        min_size=rows, max_size=rows)), dtype=float)
    density = data.draw(st.floats(0.0, 1.0))
    rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
    mat[rng.random((rows, cols)) > density] = 0.0
    vec = np.array(data.draw(st.lists(st.integers(-3, 3),
                                      min_size=cols, max_size=cols)),
                   dtype=float)
    captured = {}

    def make_program():
        A = fl.from_numpy(mat, ("dense", fmt), name="A")
        x = fl.from_numpy(vec, ("dense",), name="x")
        y = fl.zeros(rows, name="y")
        i, j = fl.indices("i", "j")
        captured["y"] = y
        return fl.forall(i, fl.forall(j, fl.increment(
            y[i], A[i, j] * x[j])))

    results = run_at_levels(make_program,
                            lambda prog: [captured["y"].to_numpy()])
    assert_bit_identical(results)
    np.testing.assert_array_equal(results[0][0][0], mat @ vec)


@settings(max_examples=40)
@given(vec=integer_vector(max_len=16), fmt=st.sampled_from(FORMATS),
       op_name=st.sampled_from(["add", "max", "min"]))
def test_reductions_bit_identical(vec, fmt, op_name):
    captured = {}
    op = fl.ops.get_op(op_name)

    def make_program():
        A = fl.from_numpy(vec, (fmt,), name="A")
        S = fl.Scalar(name="S")
        i = fl.indices("i")
        captured["S"] = S
        return fl.forall(i, fl.reduce_into(S[()], op, A[i]))

    results = run_at_levels(make_program,
                            lambda prog: [np.asarray(captured["S"].value)])
    assert_bit_identical(results)


@settings(max_examples=25)
@given(data=st.data())
def test_real_floats_agree_to_tolerance(data):
    """With real float data reassociated reductions may round
    differently; results agree to within a few ulps."""
    n = data.draw(st.integers(4, 40))
    rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
    a = rng.random(n) * 4 - 2
    b = rng.random(n) * 4 - 2
    fmt = data.draw(st.sampled_from(["dense", "sparse", "vbl"]))
    values = {}
    for level in LEVELS:
        A = fl.from_numpy(a, ("dense",), name="A")
        B = fl.from_numpy(b, (fmt,), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        prog = fl.forall(i, fl.increment(C[()], A[i] * B[i]))
        fl.execute(prog, opt_level=level)
        values[level] = float(C.value)
    for level in LEVELS[1:]:
        assert values[level] == pytest.approx(values[0], rel=1e-12,
                                              abs=1e-12)


def test_windowed_and_shifted_accesses_bit_identical():
    """Index modifiers (offset/permit through coalesce) exercise the
    lazy-op bail paths: the optimizer must leave results untouched."""
    vec = np.array([0.0, 2, 0, 3, 0, 0, 1, 4], dtype=float)
    for delta in (-2, 0, 3):
        captured = {}

        def make_program():
            A = fl.from_numpy(vec, ("sparse",), name="A")
            out = fl.zeros(len(vec), name="out")
            i = fl.indices("i")
            captured["out"] = out
            return fl.forall(i, fl.store(out[i], fl.coalesce(
                fl.access(A, fl.permit(fl.offset(i, delta))), 0.0)))

        results = run_at_levels(
            make_program, lambda prog: [captured["out"].to_numpy()])
        assert_bit_identical(results)
