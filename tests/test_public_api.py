"""The public surface: everything README/docs mention must import."""

import numpy as np


def test_lang_namespace_is_complete():
    import repro.lang as fl

    for name in fl.__all__:
        assert getattr(fl, name) is not None, name


def test_readme_quickstart_runs():
    import repro.lang as fl

    a = np.array([0, 1.9, 0, 3.0, 0, 0, 2.7, 0, 5.5, 0, 0])
    b = np.array([0, 0, 0, 3.7, 4.7, 9.2, 1.5, 8.7, 0, 0, 0])
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    kernel = fl.compile_kernel(
        fl.forall(i, fl.increment(C[()], A[i] * B[i])))
    kernel.run()
    assert abs(C.value - float(a @ b)) < 1e-12


def test_emitted_code_has_figure_1b_shape():
    """The motivating example's emitted kernel does what the paper's
    Figure 1b shows: binary-search seek into the list, random access
    into the band, no dense scan."""
    import repro.lang as fl

    a = np.zeros(1000)
    a[::7] = 1.0
    b = np.zeros(1000)
    b[300:400] = 2.0
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    kernel = fl.compile_kernel(
        fl.forall(i, fl.increment(C[()], A[i] * B[i])))
    source = kernel.source
    # The list is sought with a binary search (the skip-ahead).
    assert "search_ge(" in source
    # The band contributes pointer arithmetic, not a scan: exactly one
    # while loop (the list stepper), zero dense for-loops over i.
    assert source.count("while") == 1
    assert "for i in range(0, 1000)" not in source
    kernel.run()
    assert abs(C.value - float(a @ b)) < 1e-12


def test_data_plane_surface():
    """The warm-pool data plane is part of the public namespace."""
    import repro.lang as fl

    for name in ("WorkerPool", "configure_pool", "default_pool",
                 "ShmArena", "share_dataset", "share_tensor"):
        assert name in fl.__all__
        assert getattr(fl, name) is not None


def test_subpackage_imports():
    import repro
    import repro.baselines
    import repro.bench
    import repro.cin
    import repro.compiler
    import repro.exec
    import repro.formats
    import repro.fuzz
    import repro.ir
    import repro.looplets
    import repro.modifiers
    import repro.rewrite
    import repro.store
    import repro.tensors
    import repro.util
    import repro.workloads

    assert repro.__version__
