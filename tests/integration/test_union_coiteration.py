"""Disjunctive (union) coiteration.

The paper highlights that looplet coiteration handles disjunction (+)
as well as conjunction (*) — unlike e.g. the sparse polyhedral
framework extension it cites, which supports only conjunctive
leader-follower loops.  Addition must visit the union of supports;
multiplication only the intersection.  Both fall out of the same
stepper lowering plus rewrite rules (0 + x = x survives; 0 * x dies).
"""

import numpy as np
import pytest

import repro.lang as fl
from repro.tensors.output import SparseOutput

FORMATS = ["sparse", "vbl", "band", "rle", "bitmap", "dense"]


def vectors(seed=0, n=40):
    rng = np.random.default_rng(seed)
    a = rng.random(n) * (rng.random(n) < 0.3)
    b = rng.random(n) * (rng.random(n) < 0.3)
    return a, b


class TestSparseAddition:
    @pytest.mark.parametrize("fmt_a", FORMATS)
    @pytest.mark.parametrize("fmt_b", FORMATS)
    def test_sum_over_union(self, fmt_a, fmt_b):
        a, b = vectors(seed=1)
        A = fl.from_numpy(a, (fmt_a,), name="A")
        B = fl.from_numpy(b, (fmt_b,), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i] + B[i])))
        assert C.value == pytest.approx((a + b).sum())

    def test_elementwise_add_into_sparse_output(self):
        a, b = vectors(seed=2)
        A = fl.from_numpy(a, ("sparse",), name="A")
        B = fl.from_numpy(b, ("sparse",), name="B")
        out = SparseOutput((40,), name="out")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.store(out[i], A[i] + B[i])))
        np.testing.assert_allclose(out.to_numpy(), a + b)
        assert out.nnz() == np.count_nonzero(a + b)

    def test_union_work_scales_with_union_not_product(self):
        n = 2000
        a = np.zeros(n)
        b = np.zeros(n)
        a[np.arange(0, n, 100)] = 1.0   # 20 nonzeros
        b[np.arange(50, n, 100)] = 2.0  # 20 nonzeros, disjoint
        A = fl.from_numpy(a, ("sparse",), name="A")
        B = fl.from_numpy(b, ("sparse",), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        kernel = fl.compile_kernel(
            fl.forall(i, fl.increment(C[()], A[i] + B[i])),
            instrument=True)
        work = kernel.run()
        assert C.value == pytest.approx(60.0)
        # Work tracks the union support (~40 entries), never the
        # 2000-element dimension.
        assert work < 200

    def test_mixed_add_and_multiply(self):
        a, b = vectors(seed=3)
        c = np.where(np.arange(40) % 3 == 0, 2.0, 0.0)
        A = fl.from_numpy(a, ("sparse",), name="A")
        B = fl.from_numpy(b, ("sparse",), name="B")
        Cv = fl.from_numpy(c, ("sparse",), name="Cv")
        out = fl.Scalar(name="out")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(
            out[()], (A[i] + B[i]) * Cv[i])))
        assert out.value == pytest.approx(((a + b) * c).sum())

    def test_subtraction(self):
        a, b = vectors(seed=4)
        A = fl.from_numpy(a, ("sparse",), name="A")
        B = fl.from_numpy(b, ("sparse",), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i] - B[i])))
        assert C.value == pytest.approx((a - b).sum())

    def test_matrix_addition_dense_output(self):
        rng = np.random.default_rng(5)
        m1 = rng.random((5, 8)) * (rng.random((5, 8)) < 0.4)
        m2 = rng.random((5, 8)) * (rng.random((5, 8)) < 0.4)
        A = fl.from_numpy(m1, ("dense", "sparse"), name="A")
        B = fl.from_numpy(m2, ("dense", "vbl"), name="B")
        C = fl.zeros((5, 8), name="C")
        i, j = fl.indices("i", "j")
        fl.execute(fl.forall(i, fl.forall(j, fl.store(
            C[i, j], A[i, j] + B[i, j]))))
        np.testing.assert_allclose(C.to_numpy(), m1 + m2)


class TestSDDMM:
    """Sampled dense-dense matrix multiply: the mask access pattern of
    the paper's convolution kernel, in its classic ML form."""

    def test_sddmm(self):
        rng = np.random.default_rng(6)
        sample = (rng.random((6, 7)) < 0.25).astype(float)
        u = rng.random((6, 4))
        v = rng.random((4, 7))
        S = fl.from_numpy(sample, ("dense", "sparse"), name="S")
        U = fl.from_numpy(u, ("dense", "dense"), name="U")
        Vt = fl.from_numpy(v.T.copy(), ("dense", "dense"), name="Vt")
        out = fl.zeros((6, 7), name="out")
        o = fl.Scalar(name="o")
        i, j, k = fl.indices("i", "j", "k")
        inner = fl.forall(k, fl.increment(o[()], U[i, k] * Vt[j, k]))
        prog = fl.forall(i, fl.forall(j, fl.sieve(
            fl.ne(S[i, j], 0.0),
            fl.where(fl.store(out[i, j], o[()]), inner))))
        fl.execute(prog)
        np.testing.assert_allclose(out.to_numpy(), sample * (u @ v),
                                   atol=1e-12)
