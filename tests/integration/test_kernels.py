"""End-to-end kernels checked against numpy oracles.

Every test compiles a CIN program through the full pipeline (unfurl,
progressive lowering, source emission, exec) and compares the result
with a dense numpy computation.
"""

import numpy as np
import pytest

import repro.lang as fl

RNG = np.random.default_rng(1234)
ALL_VECTOR_FORMATS = ["dense", "sparse", "band", "vbl", "rle", "packbits",
                      "bitmap", "ragged"]


def sparse_vector(n, density=0.3, seed=0):
    rng = np.random.default_rng(seed)
    vec = rng.random(n)
    vec[rng.random(n) > density] = 0.0
    return vec


def banded_vector(n, lo, hi, seed=0):
    rng = np.random.default_rng(seed)
    vec = np.zeros(n)
    vec[lo:hi] = rng.random(hi - lo) + 0.1
    return vec


class TestDotProduct:
    """C[] += A[i] * B[i] over every pair of vector formats."""

    @pytest.mark.parametrize("fmt_a", ALL_VECTOR_FORMATS)
    @pytest.mark.parametrize("fmt_b", ALL_VECTOR_FORMATS)
    def test_format_pairs(self, fmt_a, fmt_b):
        a = sparse_vector(30, density=0.4, seed=3)
        b = banded_vector(30, 8, 19, seed=4)
        A = fl.from_numpy(a, (fmt_a,), name="A")
        B = fl.from_numpy(b, (fmt_b,), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i] * B[i])))
        assert C.value == pytest.approx(float(a @ b))

    @pytest.mark.parametrize("proto", [fl.walk, fl.gallop])
    def test_protocols_on_sparse_lists(self, proto):
        a = sparse_vector(60, density=0.15, seed=5)
        b = sparse_vector(60, density=0.5, seed=6)
        A = fl.from_numpy(a, ("sparse",), name="A")
        B = fl.from_numpy(b, ("sparse",), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(
            C[()], fl.access(A, proto(i)) * fl.access(B, proto(i)))))
        assert C.value == pytest.approx(float(a @ b))

    def test_leader_follower(self):
        a = sparse_vector(60, density=0.1, seed=7)
        b = sparse_vector(60, density=0.6, seed=8)
        A = fl.from_numpy(a, ("sparse",), name="A")
        B = fl.from_numpy(b, ("sparse",), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(
            C[()], fl.access(A, fl.gallop(i)) * fl.access(B, fl.walk(i)))))
        assert C.value == pytest.approx(float(a @ b))

    def test_empty_vectors(self):
        A = fl.from_numpy(np.zeros(10), ("sparse",), name="A")
        B = fl.from_numpy(np.zeros(10), ("sparse",), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i] * B[i])))
        assert C.value == 0.0

    def test_disjoint_supports(self):
        a = np.zeros(20)
        a[:5] = 1.0
        b = np.zeros(20)
        b[10:] = 1.0
        A = fl.from_numpy(a, ("sparse",), name="A")
        B = fl.from_numpy(b, ("sparse",), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i] * B[i])))
        assert C.value == 0.0


class TestSpMV:
    @pytest.mark.parametrize("inner", ["sparse", "vbl", "band", "rle",
                                       "dense"])
    def test_matrix_formats(self, inner):
        m = RNG.random((9, 13))
        m[RNG.random((9, 13)) > 0.4] = 0.0
        v = sparse_vector(13, density=0.5, seed=9)
        A = fl.from_numpy(m, ("dense", inner), name="A")
        x = fl.from_numpy(v, ("sparse",), name="x")
        y = fl.zeros(9, name="y")
        i, j = fl.indices("i", "j")
        fl.execute(fl.forall(i, fl.forall(
            j, fl.increment(y[i], A[i, j] * x[j]))))
        np.testing.assert_allclose(y.to_numpy(), m @ v)

    def test_spmspv_gallop(self):
        m = RNG.random((6, 40))
        m[RNG.random((6, 40)) > 0.2] = 0.0
        v = sparse_vector(40, density=0.1, seed=10)
        A = fl.from_numpy(m, ("dense", "sparse"), name="A")
        x = fl.from_numpy(v, ("sparse",), name="x")
        y = fl.zeros(6, name="y")
        i, j = fl.indices("i", "j")
        fl.execute(fl.forall(i, fl.forall(j, fl.increment(
            y[i], fl.access(A, i, fl.gallop(j)) *
            fl.access(x, fl.gallop(j))))))
        np.testing.assert_allclose(y.to_numpy(), m @ v)

    def test_dense_output_matrix(self):
        m = RNG.random((4, 5))
        n = RNG.random((4, 5))
        A = fl.from_numpy(m, ("dense", "dense"), name="A")
        B = fl.from_numpy(n, ("dense", "sparse"), name="B")
        C = fl.zeros((4, 5), name="C")
        i, j = fl.indices("i", "j")
        fl.execute(fl.forall(i, fl.forall(
            j, fl.store(C[i, j], A[i, j] + B[i, j]))))
        np.testing.assert_allclose(C.to_numpy(), m + n)


class TestTriangleCount:
    def _adjacency(self, n, p, seed):
        rng = np.random.default_rng(seed)
        adj = (rng.random((n, n)) < p).astype(float)
        adj = np.triu(adj, 1)
        return adj + adj.T

    @pytest.mark.parametrize("proto", [fl.walk, fl.gallop])
    def test_counts_match_reference(self, proto):
        adj = self._adjacency(14, 0.3, seed=11)
        A = fl.from_numpy(adj, ("dense", "sparse"), name="A")
        # The paper transposes the third operand so every access is
        # concordant with the i->j->k loop order; adjacency matrices
        # are symmetric, so the transpose shares A's storage.
        AT = fl.from_numpy(adj, ("dense", "sparse"), name="AT")
        C = fl.Scalar(name="C")
        i, j, k = fl.indices("i", "j", "k")
        prog = fl.forall(i, fl.forall(j, fl.forall(k, fl.increment(
            C[()],
            fl.access(A, i, proto(j)) * fl.access(A, j, proto(k)) *
            fl.access(AT, i, proto(k))))))
        fl.execute(prog)
        expected = float(np.trace(adj @ adj @ adj))
        assert C.value == pytest.approx(expected)


class TestStructuredFormats:
    def test_triangular_mv(self):
        n = 8
        tm = np.tril(RNG.random((n, n)))
        x = RNG.random(n)
        T = fl.triangular_from_numpy(tm, name="T")
        X = fl.from_numpy(x, ("dense",), name="X")
        y = fl.zeros(n, name="y")
        i, j = fl.indices("i", "j")
        fl.execute(fl.forall(i, fl.forall(
            j, fl.increment(y[i], T[i, j] * X[j]))))
        np.testing.assert_allclose(y.to_numpy(), tm @ x)

    def test_symmetric_mv(self):
        n = 8
        half = RNG.random((n, n))
        sym = half + half.T
        x = RNG.random(n)
        S = fl.symmetric_from_numpy(sym, name="S")
        X = fl.from_numpy(x, ("dense",), name="X")
        y = fl.zeros(n, name="y")
        i, j = fl.indices("i", "j")
        fl.execute(fl.forall(i, fl.forall(
            j, fl.increment(y[i], S[i, j] * X[j]))))
        np.testing.assert_allclose(y.to_numpy(), sym @ x)

    def test_rle_alpha_blend_uint8(self):
        img_b = np.repeat(np.array([10, 200, 10], dtype=np.uint8), 5)
        img_c = np.repeat(np.array([90, 90, 30], dtype=np.uint8), 5)
        B = fl.from_numpy(img_b, ("rle",), name="B")
        C = fl.from_numpy(img_c, ("rle",), name="C")
        A = fl.zeros(15, dtype=np.uint8, name="A")
        i = fl.indices("i")
        alpha, beta = 0.4, 0.6
        fl.execute(fl.forall(i, fl.store(A[i], fl.call(
            fl.ops.ROUND_U8, alpha * B[i] + beta * C[i]))))
        expected = np.clip(np.round(alpha * img_b.astype(float)
                                    + beta * img_c.astype(float)),
                           0, 255).astype(np.uint8)
        np.testing.assert_array_equal(A.to_numpy(), expected)

    def test_rle_sum_is_linear_in_runs(self):
        vec = np.repeat([3.0, 1.0, 2.0, 5.0], 25)  # 100 values, 4 runs
        R = fl.from_numpy(vec, ("rle",), name="R")
        S = fl.Scalar(name="S")
        i = fl.indices("i")
        n_ops = fl.execute(fl.forall(i, fl.increment(S[()], R[i])),
                           instrument=True)
        assert S.value == pytest.approx(vec.sum())
        # 1 seek + 4 coiteration steps + 4 run-summed updates: O(runs),
        # far below the 100 elements.
        assert n_ops == 9

    def test_vbl_touches_blocks_not_elements(self):
        vec = np.zeros(1000)
        vec[100:200] = 1.0  # one big block
        other = np.zeros(1000)
        other[150] = 2.0    # single nonzero
        V = fl.from_numpy(vec, ("vbl",), name="V")
        W = fl.from_numpy(other, ("sparse",), name="W")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        n_ops = fl.execute(fl.forall(i, fl.increment(C[()], V[i] * W[i])),
                           instrument=True)
        assert C.value == pytest.approx(2.0)
        # Block-level coiteration: a handful of merge steps and one
        # product — never 100 element visits.
        assert n_ops <= 12


class TestIndexModifiers:
    def test_concatenation(self):
        a = sparse_vector(8, 0.6, seed=12)
        b = sparse_vector(5, 0.6, seed=13)
        A = fl.from_numpy(a, ("sparse",), name="A")
        B = fl.from_numpy(b, ("sparse",), name="B")
        C = fl.zeros(13, name="C")
        i = fl.indices("i")
        prog = fl.forall(i, fl.store(C[i], fl.coalesce(
            fl.access(A, fl.permit(i)),
            fl.access(B, fl.permit(fl.offset(i, 8))),
            0.0)), ext=(0, 13))
        fl.execute(prog)
        np.testing.assert_allclose(C.to_numpy(), np.concatenate([a, b]))

    def test_window_slice(self):
        a = RNG.random(12)
        A = fl.from_numpy(a, ("dense",), name="A")
        C = fl.zeros(4, name="C")
        i = fl.indices("i")
        prog = fl.forall(i, fl.store(C[i], fl.access(
            A, fl.window(i, 3, 7))))
        fl.execute(prog)
        np.testing.assert_allclose(C.to_numpy(), a[3:7])

    def test_window_on_sparse(self):
        a = sparse_vector(20, 0.5, seed=14)
        A = fl.from_numpy(a, ("sparse",), name="A")
        S = fl.Scalar(name="S")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(S[()], fl.access(
            A, fl.window(i, 5, 15)))))
        assert S.value == pytest.approx(a[5:15].sum())

    def test_convolution_1d(self):
        a = sparse_vector(30, 0.3, seed=15)
        filt = np.array([0.25, 0.5, 0.25])
        A = fl.from_numpy(a, ("sparse",), name="A")
        F = fl.from_numpy(filt, ("dense",), name="F")
        B = fl.zeros(30, name="B")
        i, j = fl.indices("i", "j")
        body = fl.increment(B[i], fl.coalesce(
            fl.access(A, fl.permit(fl.offset(j, 1 - i))), 0.0) *
            fl.coalesce(fl.access(F, fl.permit(j)), 0.0))
        fl.execute(fl.forall(i, fl.forall(j, body, ext=(0, 3))))
        expected = np.convolve(a, filt[::-1], mode="same")
        np.testing.assert_allclose(B.to_numpy(), expected, atol=1e-12)

    def test_shifted_sparse_dot(self):
        a = sparse_vector(16, 0.5, seed=16)
        b = sparse_vector(16, 0.5, seed=17)
        A = fl.from_numpy(a, ("sparse",), name="A")
        B = fl.from_numpy(b, ("sparse",), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        # C += A[i - 2] * B[i] over the overlap (permit pads the edges).
        prog = fl.forall(i, fl.increment(C[()], fl.coalesce(
            fl.access(A, fl.permit(fl.offset(i, 2))), 0.0) * B[i]))
        fl.execute(prog)
        expected = sum(a[k - 2] * b[k] for k in range(2, 16))
        assert C.value == pytest.approx(expected)


class TestWhereAndMulti:
    def test_all_pairs_with_temp(self):
        mat = RNG.random((4, 6))
        mat[mat < 0.4] = 0.0
        A = fl.from_numpy(mat, ("dense", "sparse"), name="A")
        O = fl.zeros((4, 4), name="O")
        o = fl.Scalar(name="o")
        k, l, ij = fl.indices("k", "l", "ij")
        inner = fl.forall(ij, fl.increment(o[()], A[k, ij] * A[l, ij]))
        prog = fl.forall(k, fl.forall(l, fl.where(
            fl.store(O[k, l], o[()]), inner)))
        fl.execute(prog)
        np.testing.assert_allclose(O.to_numpy(), mat @ mat.T)

    def test_multi_outputs(self):
        vec = RNG.random(9)
        X = fl.from_numpy(vec, ("dense",), name="X")
        total = fl.Scalar(name="total")
        squares = fl.Scalar(name="squares")
        i = fl.indices("i")
        prog = fl.forall(i, fl.multi(
            fl.increment(total[()], X[i]),
            fl.increment(squares[()], X[i] * X[i])))
        fl.execute(prog)
        assert total.value == pytest.approx(vec.sum())
        assert squares.value == pytest.approx((vec * vec).sum())

    def test_sieve_masks_iterations(self):
        y = fl.zeros(6, name="y")
        i = fl.indices("i")
        prog = fl.forall(i, fl.sieve(
            fl.eq(fl.call(fl.ops.MOD, i, 2), 0),
            fl.store(y[i], 1.0)), ext=(0, 6))
        fl.execute(prog)
        np.testing.assert_allclose(y.to_numpy(), [1, 0, 1, 0, 1, 0])


class TestReductions:
    def test_max_reduction(self):
        vec = sparse_vector(25, 0.4, seed=18)
        X = fl.from_numpy(vec, ("sparse",), name="X")
        m = fl.Scalar(name="m")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.reduce_into(m[()], fl.ops.MAX, X[i])))
        assert m.value == pytest.approx(vec.max())

    def test_boolean_any(self):
        vec = np.zeros(12)
        vec[7] = 1.0
        X = fl.from_numpy(vec, ("sparse",), name="X")
        any_pos = fl.Scalar(False, name="any_pos", dtype=bool)
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.reduce_into(
            any_pos[()], fl.ops.OR, fl.gt(X[i], 0.5))))
        assert bool(any_pos.value) is True

    def test_instrumented_op_count_dense(self):
        vec = np.ones(17)
        X = fl.from_numpy(vec, ("dense",), name="X")
        s = fl.Scalar(name="s")
        i = fl.indices("i")
        n_ops = fl.execute(fl.forall(i, fl.increment(s[()], X[i])),
                           instrument=True)
        assert n_ops == 17

    def test_instrumented_op_count_sparse(self):
        vec = np.zeros(100)
        vec[[3, 30, 60]] = 1.0
        X = fl.from_numpy(vec, ("sparse",), name="X")
        s = fl.Scalar(name="s")
        i = fl.indices("i")
        n_ops = fl.execute(fl.forall(i, fl.increment(s[()], X[i])),
                           instrument=True)
        # 1 seek + one step and one update per stored nonzero: O(nnz),
        # never the 100 dense iterations.
        assert n_ops == 1 + 2 * 3


class TestVBLGallop:
    @pytest.mark.parametrize("proto_w", [fl.walk, fl.gallop])
    def test_vbl_gallop_correctness(self, proto_w):
        rng = np.random.default_rng(77)
        v = np.zeros(300)
        v[40:90] = rng.random(50) + 0.1
        v[200:210] = rng.random(10) + 0.1
        w = np.zeros(300)
        w[rng.choice(300, 12, replace=False)] = rng.random(12) + 0.1
        V = fl.from_numpy(v, ("vbl",), name="V")
        W = fl.from_numpy(w, ("sparse",), name="W")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(
            C[()], fl.access(V, fl.gallop(i)) * fl.access(W, proto_w(i)))))
        assert C.value == pytest.approx(float(v @ w))
