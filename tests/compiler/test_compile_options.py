"""The frozen ``CompileOptions`` bundle and its sugar-kwarg contract.

One immutable value replaces the parallel kwarg sprawl; the individual
kwargs survive as sugar that overrides single fields.  These tests pin
the validation, the merge semantics (None keeps, ``False`` is a real
override), and that ``compile_kernel(options=...)`` and the sugar
spelling are the same call.
"""

import dataclasses

import numpy as np
import pytest

import repro.lang as fl
from repro.compiler.kernel import kernel_cache
from repro.compiler.options import (
    BACKENDS,
    CACHE_MODES,
    TUNE_MODES,
    CompileOptions,
)


@pytest.fixture(autouse=True)
def clean_cache():
    kernel_cache().clear()
    yield
    kernel_cache().clear()


def dot_program(n=40, seed=0):
    rng = np.random.default_rng(seed)
    a = np.zeros(n)
    a[rng.choice(n, 5, replace=False)] = 1.0
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(rng.random(n), ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i]))


def test_defaults_are_all_unresolved():
    opts = CompileOptions()
    assert opts.to_dict() == {"cache": None, "opt_level": None,
                              "backend": None, "tune": None,
                              "remote": None, "store": None}


def test_frozen_and_hashable():
    opts = CompileOptions(backend="c")
    with pytest.raises(dataclasses.FrozenInstanceError):
        opts.backend = "python"
    assert opts == CompileOptions(backend="c")
    assert hash(opts) == hash(CompileOptions(backend="c"))


def test_validation_at_construction():
    with pytest.raises(ValueError, match="cache must be"):
        CompileOptions(cache="both")
    with pytest.raises(ValueError, match="backend must be"):
        CompileOptions(backend="rust")
    with pytest.raises(ValueError, match="tune must be"):
        CompileOptions(tune="always")
    for mode in CACHE_MODES:
        CompileOptions(cache=mode)
    for backend in BACKENDS:
        CompileOptions(backend=backend)
    for tune in TUNE_MODES:
        CompileOptions(tune=tune)


def test_cache_one_is_not_true():
    # `1 in (True, ...)` passes by equality; the identity check must
    # reject it so integer 1 never silently impersonates cache=True.
    with pytest.raises(ValueError, match="cache must be"):
        CompileOptions(cache=1)


def test_opt_level_coerced_to_int():
    assert CompileOptions(opt_level="2").opt_level == 2
    assert CompileOptions(opt_level=1.0).opt_level == 1


def test_merged_none_keeps_false_overrides():
    opts = CompileOptions(cache=True, backend="c",
                          remote="http://fleet:1")
    assert opts.merged() is opts
    assert opts.merged(backend=None) is opts
    kept = opts.merged(opt_level=1)
    assert kept.backend == "c" and kept.opt_level == 1
    # False is a value, not "keep": it must win the merge.
    assert opts.merged(cache=False).cache is False
    assert opts.merged(remote=False).remote is False


def test_build_sugar_over_options():
    base = CompileOptions(backend="c", opt_level=1)
    merged = CompileOptions.build(base, opt_level=2)
    assert merged.opt_level == 2 and merged.backend == "c"
    assert CompileOptions.build(None).to_dict() == \
        CompileOptions().to_dict()
    with pytest.raises(TypeError, match="CompileOptions"):
        CompileOptions.build({"backend": "c"})


def test_compile_kernel_accepts_options():
    kernel = fl.compile_kernel(
        dot_program(), options=CompileOptions(cache="memory",
                                              opt_level=1))
    assert kernel.opt_level == 1
    # Sugar alongside options= overrides that one field.
    kernel2 = fl.compile_kernel(
        dot_program(seed=1), opt_level=0,
        options=CompileOptions(cache="memory", opt_level=1))
    assert kernel2.opt_level == 0


def test_options_and_sugar_are_the_same_call():
    sugar = fl.compile_kernel(dot_program(), cache="memory",
                              opt_level=1)
    bundled = fl.compile_kernel(
        dot_program(seed=1),
        options=CompileOptions(cache="memory", opt_level=1))
    # The second compile hit the cache slot the first one filled:
    # identical effective configuration, identical cache key.
    assert bundled.from_cache
    assert sugar.opt_level == bundled.opt_level


def test_execute_and_run_batch_take_options():
    program = dot_program()
    fl.execute(program, options=CompileOptions(cache="memory",
                                               opt_level=1))
    from repro.cin.analyze import program_tensors

    result = fl.run_batch(
        dot_program(seed=2), [program_tensors(dot_program(seed=2))],
        executor="serial",
        options=CompileOptions(cache="memory", opt_level=1))
    assert len(result.items) == 1


def test_exported_from_lang():
    assert fl.CompileOptions is CompileOptions
