"""Unit tests for access unfurling and index-modifier wrapping."""

import numpy as np
import pytest

import repro.lang as fl
from repro.cin.builders import access, offset, permit, window
from repro.compiler.context import Context
from repro.compiler.unfurl import (
    Unfurled,
    access_leads_with,
    payload_to_expr,
    unfurl_access,
)
from repro.formats.level import FiberSlice
from repro.ir import Literal, MISSING, Var
from repro.looplets import Pipeline, Run
from repro.util.errors import LoweringError


@pytest.fixture
def ctx():
    return Context()


def sparse_tensor(n=10, name="A"):
    vec = np.zeros(n)
    vec[[1, 4]] = [1.0, 2.0]
    return fl.from_numpy(vec, ("sparse",), name=name)


class TestLeadingIndex:
    def test_plain_index(self):
        A = sparse_tensor()
        assert access_leads_with(A[Var("i")], "i")
        assert not access_leads_with(A[Var("i")], "j")

    def test_through_modifiers(self):
        A = sparse_tensor()
        acc = access(A, permit(offset(Var("i"), 2)))
        assert access_leads_with(acc, "i")

    def test_scalar_access_never_leads(self):
        C = fl.Scalar(name="C")
        assert not access_leads_with(C[()], "i")


class TestUnfurlAccess:
    def test_plain_sparse_access(self, ctx):
        A = sparse_tensor()
        node = unfurl_access(ctx, A[Var("i")], "i")
        assert isinstance(node, Unfurled)
        assert node.index == "i"
        assert node.rest == ()
        assert isinstance(node.looplet, Pipeline)

    def test_matrix_access_keeps_rest(self, ctx):
        mat = np.zeros((3, 4))
        A = fl.from_numpy(mat, ("dense", "sparse"), name="A")
        node = unfurl_access(ctx, A[Var("i"), Var("j")], "i")
        assert node.rest == (Var("j"),)

    def test_permit_wraps_with_missing_phases(self, ctx):
        A = sparse_tensor()
        node = unfurl_access(ctx, access(A, permit(Var("i"))), "i")
        pipe = node.looplet
        assert isinstance(pipe, Pipeline)
        assert len(pipe.phases) == 3
        first = pipe.phases[0].body
        assert isinstance(first, Run)
        assert first.body == Literal(MISSING)

    def test_window_truncates_and_shifts(self, ctx):
        vec = np.arange(10.0)
        A = fl.from_numpy(vec, ("dense",), name="A")
        node = unfurl_access(ctx, access(A, window(Var("i"), 3, 7)), "i")
        # A windowed dense lookup reads parent coordinate lo + i.
        body = node.looplet.body(Literal(0))
        assert isinstance(body, FiberSlice)

    def test_opaque_index_rejected(self, ctx):
        A = sparse_tensor()
        acc = access(A, Literal(3))
        with pytest.raises(LoweringError):
            unfurl_access(ctx, acc, "i")

    def test_zero_dim_tensor_rejected(self, ctx):
        C = fl.Scalar(name="C")
        from repro.cin.nodes import Access

        with pytest.raises(LoweringError):
            unfurl_access(ctx, Access(C, (Var("i"),)), "i")


class TestPayloadToExpr:
    def test_terminal_slice_becomes_load(self, ctx):
        A = sparse_tensor()
        node = unfurl_access(ctx, A[Var("i")], "i")
        slice_ = FiberSlice(A.element, Literal(0))
        expr = payload_to_expr(ctx, slice_, node)
        from repro.ir import Load

        assert isinstance(expr, Load)

    def test_missing_scalar_propagates_through_rest(self, ctx):
        mat = np.zeros((3, 4))
        A = fl.from_numpy(mat, ("dense", "sparse"), name="A")
        node = unfurl_access(ctx, A[Var("i"), Var("j")], "i")
        out = payload_to_expr(ctx, Literal(MISSING), node)
        assert out == Literal(MISSING)

    def test_plain_scalar_with_rest_rejected(self, ctx):
        mat = np.zeros((3, 4))
        A = fl.from_numpy(mat, ("dense", "sparse"), name="A")
        node = unfurl_access(ctx, A[Var("i"), Var("j")], "i")
        with pytest.raises(LoweringError):
            payload_to_expr(ctx, Literal(1.0), node)

    def test_looplet_payload_rejected(self, ctx):
        A = sparse_tensor()
        node = unfurl_access(ctx, A[Var("i")], "i")
        with pytest.raises(LoweringError):
            payload_to_expr(ctx, Run(Literal(0.0)), node)

    def test_nonterminal_slice_builds_access(self, ctx):
        mat = np.zeros((3, 4))
        mat[1, 2] = 5.0
        A = fl.from_numpy(mat, ("dense", "sparse"), name="A")
        node = unfurl_access(ctx, A[Var("i"), Var("j")], "i")
        slice_ = FiberSlice(A.levels[1], Literal(1))
        from repro.cin.nodes import Access

        out = payload_to_expr(ctx, slice_, node)
        assert isinstance(out, Access)
        assert out.idxs == (Var("j"),)


class TestContext:
    def test_buffer_binding_is_stable(self, ctx):
        data = np.zeros(3)
        first = ctx.buffer(data, "buf")
        second = ctx.buffer(data, "other_hint")
        assert first == second
        assert len(ctx.bound_buffers()) == 1

    def test_distinct_arrays_get_distinct_names(self, ctx):
        a, b = np.zeros(3), np.zeros(3)
        assert ctx.buffer(a, "buf") != ctx.buffer(b, "buf")

    def test_scalar_ref_reuse(self, ctx):
        C = fl.Scalar(name="C")
        assert ctx.scalar_ref(C) == ctx.scalar_ref(C)

    def test_scalar_output_marking(self, ctx):
        C = fl.Scalar(name="C")
        ctx.scalar_ref(C)
        ctx.mark_scalar_output(C)
        (var, tensor, is_output), = ctx.scalar_bindings()
        assert is_output and tensor is C

    def test_scoped_emission(self, ctx):
        from repro.ir import asm

        block = ctx.scoped(lambda: ctx.emit(asm.Raw("x = 1")))
        assert len(block.stmts) == 1
        assert ctx.current_block().is_nop()
