"""Unit tests for CIN statement simplification (Figure 5 stmt rules)."""

import repro.lang as fl
from repro.cin.nodes import Assign, Forall, Multi, Pass, Sieve, Where
from repro.compiler.stmt_simplify import is_identity_literal, simplify_stmt
from repro.ir import Call, Literal, Var, build, ops


def make_scalar():
    return fl.Scalar(name="C")


def make_assign(rhs, op=ops.ADD):
    C = make_scalar()
    return Assign(C[()], op, rhs), C


class TestAssignRules:
    def test_increment_by_zero_becomes_pass(self):
        stmt, C = make_assign(Literal(0))
        out = simplify_stmt(stmt)
        assert isinstance(out, Pass)
        assert out.tensors[0] is C

    def test_increment_by_float_zero_becomes_pass(self):
        stmt, _ = make_assign(Literal(0.0))
        assert isinstance(simplify_stmt(stmt), Pass)

    def test_multiply_by_one_becomes_pass(self):
        stmt, _ = make_assign(Literal(1.0), op=ops.MUL)
        assert isinstance(simplify_stmt(stmt), Pass)

    def test_overwrite_is_never_elided(self):
        stmt, _ = make_assign(Literal(0.0), op=None)
        out = simplify_stmt(stmt)
        assert isinstance(out, Assign)

    def test_rhs_is_simplified(self):
        stmt, _ = make_assign(Call(ops.MUL, [Var("x"), Literal(0)]))
        assert isinstance(simplify_stmt(stmt), Pass)

    def test_nonzero_rhs_kept(self):
        stmt, _ = make_assign(Var("x"))
        out = simplify_stmt(stmt)
        assert isinstance(out, Assign)
        assert out.rhs == Var("x")


class TestControlRules:
    def test_forall_over_pass_collapses(self):
        stmt, _ = make_assign(Literal(0))
        loop = Forall(Var("i"), stmt)
        assert isinstance(simplify_stmt(loop), Pass)

    def test_sieve_true_unwraps(self):
        stmt, _ = make_assign(Var("x"))
        out = simplify_stmt(Sieve(Literal(True), stmt))
        assert isinstance(out, Assign)

    def test_sieve_false_passes(self):
        stmt, C = make_assign(Var("x"))
        out = simplify_stmt(Sieve(Literal(False), stmt))
        assert isinstance(out, Pass)
        assert out.tensors[0] is C

    def test_sieve_runtime_cond_kept(self):
        stmt, _ = make_assign(Var("x"))
        out = simplify_stmt(Sieve(build.gt(Var("y"), 0), stmt))
        assert isinstance(out, Sieve)

    def test_sieve_cond_simplified(self):
        stmt, _ = make_assign(Var("x"))
        cond = Call(ops.AND, [Literal(True), Literal(True)])
        out = simplify_stmt(Sieve(cond, stmt))
        assert isinstance(out, Assign)

    def test_where_with_pass_producer(self):
        consumer, _ = make_assign(Var("x"))
        producer, _ = make_assign(Literal(0))
        out = simplify_stmt(Where(consumer, producer))
        assert isinstance(out, Assign)

    def test_where_with_pass_consumer(self):
        consumer, _ = make_assign(Literal(0))
        producer, _ = make_assign(Var("x"))
        out = simplify_stmt(Where(consumer, producer))
        assert isinstance(out, Pass)

    def test_multi_drops_dead_children(self):
        live, _ = make_assign(Var("x"))
        dead, _ = make_assign(Literal(0))
        out = simplify_stmt(Multi([live, dead]))
        assert isinstance(out, Multi)
        assert len(out.stmts) == 1

    def test_multi_all_dead_becomes_pass(self):
        dead1, _ = make_assign(Literal(0))
        dead2, _ = make_assign(Literal(0))
        assert isinstance(simplify_stmt(Multi([dead1, dead2])), Pass)

    def test_untouched_statement_shared(self):
        stmt, _ = make_assign(Var("x"))
        loop = Forall(Var("i"), stmt)
        assert simplify_stmt(loop) is loop


class TestIdentityLiteral:
    def test_int_float_bool_zero(self):
        assert is_identity_literal(Literal(0), ops.ADD)
        assert is_identity_literal(Literal(0.0), ops.ADD)
        assert is_identity_literal(Literal(False), ops.ADD)

    def test_non_identity(self):
        assert not is_identity_literal(Literal(1), ops.ADD)
        assert not is_identity_literal(Var("x"), ops.ADD)
        assert not is_identity_literal(Literal(0), None)

    def test_ops_without_identity(self):
        assert not is_identity_literal(Literal(0), ops.MIN)
