"""Golden tests for the worked lowering examples of Section 6.1.

Each test builds the paper's example program from hand-constructed
looplets (via a custom looplet-defined tensor) and asserts the *shape*
of the emitted Python: which loops exist, what got hoisted, what
vanished.  These document the compiler's per-looplet passes.
"""

import numpy as np
import pytest

import repro.lang as fl
from repro.formats.custom import LoopletTensor
from repro.ir import Literal, Load, Var, build
from repro.looplets import (
    Case,
    Lookup,
    Phase,
    Pipeline,
    Run,
    Spike,
    Stepper,
    Switch,
)


def scalar_program(*factors):
    """C[] += prod(factors[i]) over i in [0, 10)."""
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    rhs = factors[0][i]
    for factor in factors[1:]:
        rhs = rhs * factor[i]
    return fl.forall(i, fl.increment(C[()], rhs), ext=(0, 10)), C


def compile_source(prog):
    # These are golden tests for the *lowering* passes; compile with
    # the optimizer off so they assert the shape lowering produced,
    # not what the target-IR optimizer made of it afterwards.
    return fl.compile_kernel(prog, opt_level=0).source


class TestLookupLowering:
    """Lookups: emit a plain for loop and substitute the index."""

    def test_emits_for_loop(self):
        A = LoopletTensor(10, lambda ctx, pos: Lookup(
            lambda j: build.times(j, j)), name="A")
        prog, C = scalar_program(A)
        source = compile_source(prog)
        assert "for i in range(0, 10):" in source
        assert "i * i" in source

    def test_executes(self):
        A = LoopletTensor(10, lambda ctx, pos: Lookup(
            lambda j: build.times(j, j)), name="A")
        prog, C = scalar_program(A)
        fl.execute(prog)
        assert C.value == sum(j * j for j in range(10))


class TestRunLowering:
    """Runs: unwrap to scalars; zero runs annihilate the whole loop."""

    def test_zero_run_erases_everything(self):
        A = LoopletTensor(10, lambda ctx, pos: Run(Var("x")), name="A")
        B = LoopletTensor(10, lambda ctx, pos: Run(Literal(0.0)),
                          name="B")
        prog, C = scalar_program(A, B)
        source = compile_source(prog)
        # The paper's example: @∀ i C[] += A[i]*B[i] with B = Run(0)
        # lowers to @pass — no loop, no additions.
        assert "for" not in source
        assert "while" not in source
        assert "+=" not in source

    def test_constant_run_uses_run_summation(self):
        A = LoopletTensor(10, lambda ctx, pos: Run(Literal(3.0)),
                          name="A")
        prog, C = scalar_program(A)
        source = compile_source(prog)
        assert "for" not in source
        assert "C_acc += 30.0" in source
        fl.execute(prog)
        assert C.value == 30.0


class TestSpikeLowering:
    """Spikes: split into a run body and a unit tail evaluation."""

    def test_tail_only_remains(self):
        data = np.arange(10.0)
        buf = {}

        def unfurl(ctx, pos):
            buf["val"] = ctx.buffer(data, "Adata")
            return Spike(Literal(0.0), Load(buf["val"], Literal(9)))

        A = LoopletTensor(10, unfurl, name="A")
        B = LoopletTensor(10, unfurl, name="B")
        prog, C = scalar_program(A, B)
        source = compile_source(prog)
        # Body region is 0 * 0 => gone; only the single tail product
        # remains, with no loop around it.
        assert "for" not in source
        assert source.count("+=") == 1
        fl.execute(prog)
        assert C.value == 81.0

    def test_spike_body_still_loops_when_nonzero(self):
        A = LoopletTensor(10, lambda ctx, pos: Spike(Literal(2.0),
                                                     Literal(7.0)),
                          name="A")
        prog, C = scalar_program(A)
        fl.execute(prog)
        assert C.value == 2.0 * 9 + 7.0


class TestSwitchLowering:
    """Switches: one if-else chain hoisted out, each case lowered."""

    def test_cases_hoisted_into_if_chain(self):
        A = LoopletTensor(10, lambda ctx, pos: Switch([
            Case(build.gt(Var("x"), 1), Run(Literal(1.0))),
            Case(Literal(True), Run(Literal(2.0))),
        ]), name="A")
        B = LoopletTensor(10, lambda ctx, pos: Switch([
            Case(build.gt(Var("y"), 1), Run(Literal(3.0))),
            Case(Literal(True), Run(Literal(4.0))),
        ]), name="B")
        prog, C = scalar_program(A, B)
        # x and y are free runtime variables; bind them as parameters.
        try:
            fl.compile_kernel(prog)
        except Exception:
            pass
        # The variables are unbound in this synthetic test; what matters
        # is the structure, so rebuild with literals instead.
        A2 = LoopletTensor(10, lambda ctx, pos: Switch([
            Case(build.gt(Literal(3), 1), Run(Literal(1.0))),
            Case(Literal(True), Run(Literal(2.0))),
        ]), name="A2")
        prog2, C2 = scalar_program(A2, B)
        source = compile_source(prog2)
        # A2's condition folds statically to true; B's stays runtime.
        assert "if y > 1:" in source
        assert "else:" in source

    def test_static_case_selected_at_compile_time(self):
        A = LoopletTensor(10, lambda ctx, pos: Switch([
            Case(Literal(False), Run(Literal(1.0))),
            Case(Literal(True), Run(Literal(5.0))),
        ]), name="A")
        prog, C = scalar_program(A)
        source = compile_source(prog)
        assert "if" not in source
        fl.execute(prog)
        assert C.value == 50.0


class TestPipelineLowering:
    """Pipelines: the extent splits at phase boundaries."""

    def test_phase_split_shapes(self):
        A = LoopletTensor(10, lambda ctx, pos: Pipeline([
            Phase(Run(Literal(1.0)), stride=Var("s_A")),
            Phase(Run(Literal(2.0))),
        ]), name="A")
        B = LoopletTensor(10, lambda ctx, pos: Pipeline([
            Phase(Run(Literal(3.0)), stride=Var("s_B")),
            Phase(Run(Literal(4.0))),
        ]), name="B")
        # Bind the strides through buffers so they are kernel inputs.
        s_a = np.array([4])
        s_b = np.array([7])

        def unfurl_a(ctx, pos):
            buf = ctx.buffer(s_a, "s_A")
            return Pipeline([
                Phase(Run(Literal(1.0)), stride=Load(buf, Literal(0))),
                Phase(Run(Literal(2.0))),
            ])

        def unfurl_b(ctx, pos):
            buf = ctx.buffer(s_b, "s_B")
            return Pipeline([
                Phase(Run(Literal(3.0)), stride=Load(buf, Literal(0))),
                Phase(Run(Literal(4.0))),
            ])

        A = LoopletTensor(10, unfurl_a, name="A")
        B = LoopletTensor(10, unfurl_b, name="B")
        prog, C = scalar_program(A, B)
        source = compile_source(prog)
        # Four phase-combination regions appear as min/max boundary
        # arithmetic (the paper's 1*3, 1*4, 2*3, 2*4 regions).
        assert source.count("min(") >= 2
        fl.execute(prog)
        # [0,4): 1*3, [4,7): 2*3, [7,10): 2*4.
        assert C.value == 4 * 3.0 + 3 * 6.0 + 3 * 8.0

    def test_empty_phase_guarded(self):
        s_zero = np.array([0])

        def unfurl(ctx, pos):
            buf = ctx.buffer(s_zero, "s")
            return Pipeline([
                Phase(Run(Literal(9.0)), stride=Load(buf, Literal(0))),
                Phase(Run(Literal(1.0))),
            ])

        A = LoopletTensor(10, unfurl, name="A")
        prog, C = scalar_program(A)
        fl.execute(prog)
        assert C.value == 10.0


class TestStepperLowering:
    """Steppers: a while loop taking the smallest stride each step."""

    def test_while_loop_with_min_stride(self):
        idx = np.array([2, 5, 9, 10], dtype=np.int64)
        val = np.array([1.0, 2.0, 3.0, 4.0])

        def unfurl(ctx, pos):
            idx_buf = ctx.buffer(idx, "idx")
            val_buf = ctx.buffer(val, "val")
            p = Var(ctx.freshen("p"))
            from repro.ir import asm, ops

            ctx.emit(asm.AssignStmt(p, Literal(0)))
            return Stepper(
                stride=build.plus(Load(idx_buf, p), 1),
                body=Run(Load(val_buf, p)),
                next=lambda ctx: [asm.AccumStmt(p, ops.ADD, 1)],
            )

        A = LoopletTensor(11, unfurl, name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        prog = fl.forall(i, fl.increment(C[()], A[i]), ext=(0, 11))
        source = compile_source(prog)
        assert "while" in source
        assert "min(" in source
        fl.execute(prog)
        # Runs: [0,3)=1, [3,6)=2, [6,10)=3, [10,11)=4.
        assert C.value == 3 * 1 + 3 * 2 + 4 * 3 + 1 * 4

    def test_two_steppers_merge(self):
        a = np.array([0, 1.0, 0, 2.0, 0, 0, 3.0, 0])
        b = np.array([0, 4.0, 0, 0, 5.0, 0, 6.0, 0])
        A = fl.from_numpy(a, ("sparse",), name="A")
        B = fl.from_numpy(b, ("sparse",), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        prog = fl.forall(i, fl.increment(C[()], A[i] * B[i]))
        source = compile_source(prog)
        assert "while" in source
        # Guarded advancement of both cursors (p += stride == idx[p]).
        assert source.count("+= 1") >= 2
        fl.execute(prog)
        assert C.value == pytest.approx(1 * 4 + 3 * 6)


class TestJumperLowering:
    """Jumpers: the while loop takes the largest stride (galloping)."""

    def test_max_stride_in_emitted_code(self):
        a = np.zeros(50)
        a[[10, 40]] = 1.0
        b = np.zeros(50)
        b[::2] = 2.0
        A = fl.from_numpy(a, ("sparse",), name="A")
        B = fl.from_numpy(b, ("sparse",), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        prog = fl.forall(i, fl.increment(
            C[()], fl.access(A, fl.gallop(i)) * fl.access(B, fl.gallop(i))))
        source = compile_source(prog)
        assert "max(" in source
        assert "search_ge(" in source
        fl.execute(prog)
        assert C.value == pytest.approx(float(a @ b))
