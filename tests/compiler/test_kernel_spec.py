"""Serialized kernel artifacts: to_spec / from_spec round trips.

The spec is the contract that lets a process pool shard batched work:
optimized source + binding plan + structural key, JSON-serializable,
rebuilt in the worker by re-``exec``-ing the source.  The compiled
function object itself must never be required to cross a process
boundary.
"""

import json

import numpy as np
import pytest

import repro.lang as fl
from repro.cin.analyze import program_tensors
from repro.compiler.kernel import SPEC_VERSION, CompiledKernel
from repro.util.errors import BindingError, SpecError


def dot_program(a, b):
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i]))


def make_pair(seed=0, n=120):
    rng = np.random.default_rng(seed)
    a = np.zeros(n)
    a[rng.choice(n, 15, replace=False)] = rng.random(15) + 0.1
    b = np.zeros(n)
    b[40:80] = rng.random(40) + 0.1
    return a, b


def test_spec_is_json_serializable_and_complete():
    kernel = fl.compile_kernel(dot_program(*make_pair()),
                               instrument=True)
    spec = kernel.to_spec()
    text = json.dumps(spec)  # must not raise
    decoded = json.loads(text)
    assert decoded["spec_version"] == SPEC_VERSION
    assert decoded["name"] == "kernel"
    assert decoded["source"] == kernel.source
    assert decoded["raw_source"] == kernel.raw_source
    assert decoded["instrument"] is True
    assert decoded["opt_level"] == kernel.opt_level
    assert decoded["structural_key"] is not None


def test_spec_roundtrip_preserves_behavior():
    """A JSON-roundtripped spec rebuilds an artifact that binds fresh
    tensors and produces identical results and op counts."""
    program = dot_program(*make_pair())
    kernel = fl.compile_kernel(program, instrument=True)
    expected_ops = kernel.run()
    expected = kernel.outputs[0].value

    spec = json.loads(json.dumps(kernel.to_spec()))
    rebuilt = CompiledKernel.from_spec(spec)
    assert rebuilt.signatures == kernel.artifact.signatures
    assert rebuilt.plan == kernel.artifact.plan
    assert rebuilt.structural_key == kernel.artifact.structural_key

    tensors = program_tensors(program)
    result = rebuilt.fn(*rebuilt.bind(tensors))
    assert int(result) == int(expected_ops)
    scalar = next(t for t in tensors if t.name == "C")
    assert scalar.value == pytest.approx(expected)


def test_rebuilt_artifact_rejects_bad_bindings():
    program = dot_program(*make_pair())
    kernel = fl.compile_kernel(program)
    rebuilt = CompiledKernel.from_spec(
        json.loads(json.dumps(kernel.to_spec())))
    tensors = program_tensors(program)
    with pytest.raises(BindingError):
        rebuilt.bind(tensors[:-1])
    a, b = make_pair(1)
    swapped = list(tensors)
    slot = next(pos for pos, t in enumerate(tensors)
                if t.name == "B")
    swapped[slot] = fl.from_numpy(b, ("sparse",), name="B")
    with pytest.raises(BindingError):
        rebuilt.bind(swapped)


def test_spec_version_checked():
    kernel = fl.compile_kernel(dot_program(*make_pair()))
    spec = kernel.to_spec()
    spec["spec_version"] = SPEC_VERSION + 1
    with pytest.raises(SpecError, match="version"):
        CompiledKernel.from_spec(spec)


def test_identity_pinned_kernels_refuse_to_serialize():
    """Custom looplet tensors are identity-keyed and pin compile-time
    buffers; their artifacts must not cross a process boundary."""
    from repro.formats.custom import LoopletTensor
    from repro.ir import Literal
    from repro.looplets import Run

    A = LoopletTensor(6, lambda ctx, pos: Run(Literal(1.5)), name="A")
    B = fl.from_numpy(np.ones(6), ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    kernel = fl.compile_kernel(
        fl.forall(i, fl.increment(C[()], A[i] * B[i])))
    with pytest.raises(SpecError):
        kernel.to_spec()


def test_opt_level_zero_spec_roundtrip():
    """Unoptimized artifacts serialize too (source == raw_source)."""
    program = dot_program(*make_pair())
    kernel = fl.compile_kernel(program, opt_level=0)
    spec = kernel.to_spec()
    assert spec["source"] == spec["raw_source"]
    rebuilt = CompiledKernel.from_spec(spec)
    tensors = program_tensors(program)
    rebuilt.fn(*rebuilt.bind(tensors))
    a, b = make_pair()
    scalar = next(t for t in tensors if t.name == "C")
    assert scalar.value == pytest.approx(float(a @ b))
