"""Unit tests for kernel assembly and execution semantics."""

import numpy as np
import pytest

import repro.lang as fl
from repro.util.errors import LoweringError


def simple_sum(n=6):
    vec = np.arange(float(n))
    A = fl.from_numpy(vec, ("dense",), name="A")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    prog = fl.forall(i, fl.increment(C[()], A[i]))
    return prog, A, C, vec


class TestKernelObject:
    def test_source_is_valid_python(self):
        prog, _, _, _ = simple_sum()
        kernel = fl.compile_kernel(prog)
        compile(kernel.source, "<test>", "exec")
        assert kernel.source.startswith("def kernel(")

    def test_rerun_resets_outputs(self):
        prog, _, C, vec = simple_sum()
        kernel = fl.compile_kernel(prog)
        kernel.run()
        first = C.value
        kernel.run()
        assert C.value == first == vec.sum()

    def test_instrumented_kernel_returns_count(self):
        prog, _, _, _ = simple_sum()
        kernel = fl.compile_kernel(prog, instrument=True)
        assert kernel.run() == 6

    def test_uninstrumented_kernel_returns_none(self):
        prog, _, _, _ = simple_sum()
        kernel = fl.compile_kernel(prog)
        assert kernel.run() is None

    def test_callable_alias(self):
        prog, _, C, vec = simple_sum()
        kernel = fl.compile_kernel(prog)
        kernel()
        assert C.value == vec.sum()

    def test_kernel_sees_data_mutations(self):
        prog, A, C, vec = simple_sum()
        kernel = fl.compile_kernel(prog)
        kernel.run()
        A.element.val[:] = 0.0
        kernel.run()
        assert C.value == 0.0

    def test_outputs_listed(self):
        prog, _, C, _ = simple_sum()
        kernel = fl.compile_kernel(prog)
        assert kernel.outputs == [C]

    def test_custom_name(self):
        prog, _, _, _ = simple_sum()
        kernel = fl.compile_kernel(prog, name="my_kernel")
        assert "def my_kernel(" in kernel.source


class TestErrorReporting:
    def test_missing_extent(self):
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        prog = fl.forall(i, fl.increment(C[()], 1.0 * i))
        with pytest.raises(Exception):
            fl.compile_kernel(prog)

    def test_discordant_access_reported(self):
        mat = np.ones((3, 4))
        A = fl.from_numpy(mat, ("dense", "sparse"), name="A")
        C = fl.Scalar(name="C")
        i, j = fl.indices("i", "j")
        # Loop j outer but access A[i, j]: i never becomes leading.
        prog = fl.forall(j, fl.forall(i, fl.increment(
            C[()], A[i, j])), ext=(0, 4))
        with pytest.raises(LoweringError):
            fl.compile_kernel(prog)

    def test_sparse_output_target_not_locatable(self):
        vec = np.ones(4)
        A = fl.from_numpy(vec, ("dense",), name="A")
        y = fl.from_numpy(np.zeros(4), ("sparse",), name="y")
        i = fl.indices("i")
        from repro.util.errors import ProtocolError

        with pytest.raises(ProtocolError):
            fl.compile_kernel(fl.forall(i, fl.store(y[i], A[i])))


class TestHigherDimensional:
    def test_three_level_contraction(self):
        rng = np.random.default_rng(0)
        t = rng.random((3, 4, 5))
        t[rng.random((3, 4, 5)) > 0.4] = 0.0
        T = fl.from_numpy(t, ("dense", "sparse", "sparse"), name="T")
        C = fl.Scalar(name="C")
        i, j, k = fl.indices("i", "j", "k")
        prog = fl.forall(i, fl.forall(j, fl.forall(k, fl.increment(
            C[()], T[i, j, k]))))
        fl.execute(prog)
        assert C.value == pytest.approx(t.sum())

    def test_dcsr_coiteration_with_absent_rows(self):
        """Outer sparse levels: absent rows flow as FillFibers."""
        rng = np.random.default_rng(5)
        a = np.zeros((8, 10))
        b = np.zeros((8, 10))
        for row in (1, 3, 6):
            a[row] = rng.random(10) * (rng.random(10) < 0.4)
        for row in (3, 4, 6):
            b[row] = rng.random(10) * (rng.random(10) < 0.4)
        A = fl.from_numpy(a, ("sparse", "sparse"), name="A")
        B = fl.from_numpy(b, ("sparse", "sparse"), name="B")
        C = fl.Scalar(name="C")
        i, j = fl.indices("i", "j")
        prog = fl.forall(i, fl.forall(j, fl.increment(
            C[()], A[i, j] * B[i, j])))
        fl.execute(prog)
        assert C.value == pytest.approx((a * b).sum())

    def test_mixed_formats_per_mode(self):
        rng = np.random.default_rng(6)
        t = rng.random((4, 6, 8))
        t[rng.random((4, 6, 8)) > 0.5] = 0.0
        T = fl.from_numpy(t, ("dense", "ragged", "vbl"), name="T")
        np.testing.assert_array_equal(T.to_numpy(), t)
        C = fl.Scalar(name="C")
        i, j, k = fl.indices("i", "j", "k")
        fl.execute(fl.forall(i, fl.forall(j, fl.forall(k, fl.increment(
            C[()], T[i, j, k])))))
        assert C.value == pytest.approx(t.sum())


class TestOptLevel:
    def test_default_keeps_both_sources(self):
        prog, _, _, _ = simple_sum()
        kernel = fl.compile_kernel(prog, cache=False)
        assert kernel.opt_level == 2
        assert kernel.raw_source != kernel.source
        compile(kernel.raw_source, "<raw>", "exec")
        compile(kernel.source, "<opt>", "exec")

    def test_level_zero_emits_lowered_code_untouched(self):
        prog, _, _, _ = simple_sum()
        kernel = fl.compile_kernel(prog, cache=False, opt_level=0)
        assert kernel.opt_level == 0
        assert kernel.raw_source == kernel.source
        assert "for i in range" in kernel.source

    def test_levels_agree_on_results(self):
        values = []
        for level in (0, 1, 2):
            prog, _, C, vec = simple_sum()
            fl.execute(prog, opt_level=level)
            values.append(C.value)
        assert values[0] == values[1] == values[2] == 15.0

    def test_opt_level_is_part_of_the_cache_key(self):
        fl.kernel_cache().clear()
        prog, _, _, _ = simple_sum()
        plain = fl.compile_kernel(prog, opt_level=0)
        assert not plain.from_cache
        prog2, _, _, _ = simple_sum()
        optimized = fl.compile_kernel(prog2, opt_level=2)
        # Different levels never share an artifact...
        assert not optimized.from_cache
        assert optimized.source != plain.source
        # ...but each level hits its own cached artifact.
        prog3, _, _, _ = simple_sum()
        again = fl.compile_kernel(prog3, opt_level=0)
        assert again.from_cache
        assert again.source == plain.source

    def test_instrumented_counts_identical_across_levels(self):
        counts = set()
        for level in (0, 1, 2):
            prog, _, _, _ = simple_sum()
            counts.add(fl.execute(prog, instrument=True,
                                  opt_level=level))
        assert counts == {6}

    def test_rebinding_works_on_optimized_kernels(self):
        prog, A, C, vec = simple_sum()
        kernel = fl.compile_kernel(prog, cache=False)
        other = fl.from_numpy(vec * 10, ("dense",), name="A")
        kernel.run()
        assert C.value == 15.0
        kernel.rebind(A=other)
        kernel.run()
        assert C.value == 150.0
