"""The kernel cache: hit/miss semantics, oracle equivalence of cached
kernels rebound to fresh data, rebinding, and LRU eviction."""

import numpy as np
import pytest

import repro.lang as fl
from repro.bench.kernels import (
    masked_convolution_program,
    spmspv_program,
    triangle_count_program,
)
from repro.compiler.kernel import KernelCache
from repro.util.errors import BindingError


@pytest.fixture(autouse=True)
def fresh_cache():
    fl.kernel_cache().clear()
    yield
    fl.kernel_cache().clear()


def dot_program(a, b):
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i])), C


def sparse_vec(n, nnz, seed):
    rng = np.random.default_rng(seed)
    vec = np.zeros(n)
    vec[rng.choice(n, nnz, replace=False)] = rng.random(nnz) + 0.1
    return vec


def band_vec(n, lo, hi, seed):
    rng = np.random.default_rng(seed)
    vec = np.zeros(n)
    vec[lo:hi] = rng.random(hi - lo) + 0.1
    return vec


def sparse_mat(rows, cols, density, seed):
    rng = np.random.default_rng(seed)
    mat = rng.random((rows, cols))
    mat[rng.random((rows, cols)) > density] = 0.0
    return mat


def adjacency(n, density, seed):
    rng = np.random.default_rng(seed)
    mat = (rng.random((n, n)) < density).astype(float)
    mat = np.triu(mat, 1)
    return mat + mat.T


class TestCacheHitOracle:
    """Same structure + fresh data: the second compile is a hit, and
    the rebound artifact's outputs are bitwise-identical to a fresh,
    uncached compile over the same data."""

    def _check(self, make_program, output_of):
        prog_one, _ = make_program(seed=1)
        kernel_one = fl.compile_kernel(prog_one)
        assert not kernel_one.from_cache
        kernel_one.run()

        prog_two, out_two = make_program(seed=2)
        kernel_two = fl.compile_kernel(prog_two)
        assert kernel_two.from_cache
        assert kernel_two.source == kernel_one.source
        kernel_two.run()
        cached_result = output_of(out_two)

        prog_ref, out_ref = make_program(seed=2)
        kernel_ref = fl.compile_kernel(prog_ref, cache=False)
        assert not kernel_ref.from_cache
        kernel_ref.run()
        expected = output_of(out_ref)
        np.testing.assert_array_equal(cached_result, expected)
        stats = fl.kernel_cache().stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_dot(self):
        def make(seed):
            return dot_program(sparse_vec(60, 7, seed),
                               band_vec(60, 20, 45, seed))

        self._check(make, lambda c: np.array(c.value))

    def test_spmspv(self):
        def make(seed):
            return spmspv_program(sparse_mat(12, 15, 0.3, seed),
                                  sparse_vec(15, 5, seed),
                                  "gallop_both")

        self._check(make, lambda y: y.to_numpy())

    def test_triangle_count(self):
        def make(seed):
            return triangle_count_program(adjacency(14, 0.4, seed),
                                          "gallop")

        self._check(make, lambda c: np.array(c.value))

    def test_convolution(self):
        filt = np.ones((3, 3)) / 9.0

        def make(seed):
            return masked_convolution_program(
                sparse_mat(10, 10, 0.2, seed), filt)

        self._check(make, lambda c: c.to_numpy())

    def test_execute_routes_through_cache(self):
        for seed in (1, 2, 3):
            prog, _ = dot_program(sparse_vec(40, 5, seed),
                                  band_vec(40, 10, 30, seed))
            fl.execute(prog)
        stats = fl.kernel_cache().stats()
        assert stats["misses"] == 1 and stats["hits"] == 2

    def test_tensor_names_do_not_affect_the_key(self):
        a, b = sparse_vec(30, 4, 1), band_vec(30, 5, 20, 1)
        prog_one, _ = dot_program(a, b)
        fl.compile_kernel(prog_one)

        A = fl.from_numpy(a, ("sparse",), name="completely")
        B = fl.from_numpy(b, ("band",), name="different")
        C = fl.Scalar(name="names")
        i = fl.indices("i")
        renamed = fl.forall(i, fl.increment(C[()], A[i] * B[i]))
        kernel = fl.compile_kernel(renamed)
        assert kernel.from_cache
        kernel.run()
        assert C.value == pytest.approx(a @ b)


class TestCacheMisses:
    def test_different_formats_miss(self):
        a, b = sparse_vec(30, 4, 1), band_vec(30, 5, 20, 1)
        prog_one, _ = dot_program(a, b)
        fl.compile_kernel(prog_one)

        A = fl.from_numpy(a, ("dense",), name="A")
        B = fl.from_numpy(b, ("band",), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        prog_two = fl.forall(i, fl.increment(C[()], A[i] * B[i]))
        kernel = fl.compile_kernel(prog_two)
        assert not kernel.from_cache
        assert fl.kernel_cache().stats()["misses"] == 2

    def test_instrument_flag_misses(self):
        prog, _ = dot_program(sparse_vec(30, 4, 1),
                              band_vec(30, 5, 20, 1))
        fl.compile_kernel(prog, instrument=False)
        kernel = fl.compile_kernel(prog, instrument=True)
        assert not kernel.from_cache
        assert kernel.run() > 0

    def test_different_shapes_miss(self):
        prog_one, _ = dot_program(sparse_vec(30, 4, 1),
                                  band_vec(30, 5, 20, 1))
        prog_two, _ = dot_program(sparse_vec(31, 4, 1),
                                  band_vec(31, 5, 20, 1))
        fl.compile_kernel(prog_one)
        kernel = fl.compile_kernel(prog_two)
        assert not kernel.from_cache

    def test_different_protocols_miss(self):
        mat, vec = sparse_mat(8, 9, 0.4, 3), sparse_vec(9, 3, 3)
        fl.compile_kernel(spmspv_program(mat, vec, "walk_walk")[0])
        kernel = fl.compile_kernel(
            spmspv_program(mat, vec, "gallop_both")[0])
        assert not kernel.from_cache

    def test_different_fill_misses(self):
        for fill in (0.0, 1.5):
            vec = np.full(10, fill)
            vec[3] = 2.0
            A = fl.from_numpy(vec, ("rle",), fill=fill, name="A")
            C = fl.Scalar(name="C")
            i = fl.indices("i")
            kernel = fl.compile_kernel(
                fl.forall(i, fl.increment(C[()], A[i])))
            assert not kernel.from_cache

    def test_cache_false_leaves_cache_untouched(self):
        prog, _ = dot_program(sparse_vec(30, 4, 1),
                              band_vec(30, 5, 20, 1))
        fl.compile_kernel(prog, cache=False)
        stats = fl.kernel_cache().stats()
        assert stats == {"hits": 0, "misses": 0, "evictions": 0,
                         "size": 0, "maxsize": stats["maxsize"]}


class TestLRUEviction:
    """KernelCache unit behavior, independent of compilation."""

    def test_eviction_respects_cap(self):
        cache = KernelCache(maxsize=2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.store("c", 3)
        assert len(cache) == 2
        assert "a" not in cache and "b" in cache and "c" in cache
        assert cache.stats()["evictions"] == 1

    def test_lookup_refreshes_recency(self):
        cache = KernelCache(maxsize=2)
        cache.store("a", 1)
        cache.store("b", 2)
        assert cache.lookup("a") == 1
        cache.store("c", 3)
        assert "a" in cache and "b" not in cache

    def test_resize_evicts_lru_first(self):
        cache = KernelCache(maxsize=4)
        for key in "abcd":
            cache.store(key, key)
        cache.lookup("a")
        cache.resize(2)
        assert len(cache) == 2
        assert "a" in cache and "d" in cache

    def test_zero_cap_stores_nothing(self):
        cache = KernelCache(maxsize=0)
        cache.store("a", 1)
        assert len(cache) == 0

    def test_stats_counts(self):
        cache = KernelCache(maxsize=8)
        cache.store("a", 1)
        cache.lookup("a")
        cache.lookup("ghost")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1 and stats["maxsize"] == 8

    def test_compiled_eviction_round_trip(self):
        """Evicted structures recompile (miss) and still run right."""
        fl.kernel_cache().resize(2)
        try:
            results = {}
            for n in (20, 21, 22, 20):  # 20 is evicted by 21/22
                a, b = sparse_vec(n, 4, n), band_vec(n, 5, 15, n)
                prog, C = dot_program(a, b)
                fl.compile_kernel(prog).run()
                results[n] = (C.value, a @ b)
            stats = fl.kernel_cache().stats()
            assert stats["misses"] == 4 and stats["evictions"] == 2
            for value, expected in results.values():
                assert value == pytest.approx(expected)
        finally:
            fl.kernel_cache().resize(256)


class TestRebinding:
    def test_rebind_by_name(self):
        a, b = sparse_vec(30, 4, 1), band_vec(30, 5, 20, 1)
        prog, C = dot_program(a, b)
        kernel = fl.compile_kernel(prog)
        a_new = sparse_vec(30, 6, 9)
        kernel.rebind(A=fl.from_numpy(a_new, ("sparse",), name="A"))
        kernel.run()
        assert C.value == pytest.approx(a_new @ b)

    def test_rebind_full_sequence(self):
        a, b = sparse_vec(30, 4, 1), band_vec(30, 5, 20, 1)
        prog, _ = dot_program(a, b)
        kernel = fl.compile_kernel(prog)
        a2, b2 = sparse_vec(30, 5, 7), band_vec(30, 8, 25, 7)
        prog2, C2 = dot_program(a2, b2)
        kernel.rebind(kernel_two_tensors(prog2))
        kernel.run()
        assert C2.value == pytest.approx(a2 @ b2)

    def test_run_overrides_do_not_mutate_binding(self):
        a, b = sparse_vec(30, 4, 1), band_vec(30, 5, 20, 1)
        prog, C = dot_program(a, b)
        kernel = fl.compile_kernel(prog)
        a_other = sparse_vec(30, 6, 9)
        kernel.run(A=fl.from_numpy(a_other, ("sparse",), name="A"))
        assert C.value == pytest.approx(a_other @ b)
        kernel.run()  # stored binding unchanged
        assert C.value == pytest.approx(a @ b)

    def test_signature_mismatch_rejected(self):
        prog, _ = dot_program(sparse_vec(30, 4, 1),
                              band_vec(30, 5, 20, 1))
        kernel = fl.compile_kernel(prog)
        with pytest.raises(BindingError):
            kernel.rebind(A=fl.from_numpy(np.zeros(30), ("dense",),
                                          name="A"))
        with pytest.raises(BindingError):
            kernel.rebind(A=fl.from_numpy(np.zeros(31), ("sparse",),
                                          name="A"))

    def test_unknown_name_rejected(self):
        prog, _ = dot_program(sparse_vec(30, 4, 1),
                              band_vec(30, 5, 20, 1))
        kernel = fl.compile_kernel(prog)
        with pytest.raises(BindingError):
            kernel.rebind(Z=fl.Scalar(name="Z"))

    def test_new_aliasing_between_slots_rejected(self):
        """Distinct compile-time buffers may not be rebound to one
        array: the emitted output reset would wipe the input."""
        n = 8
        A = fl.from_numpy(np.ones(n), ("dense",), name="A")
        C = fl.from_numpy(np.zeros(n), ("dense",), name="C")
        i = fl.indices("i")
        kernel = fl.compile_kernel(
            fl.forall(i, fl.store(C[i], A[i] + A[i])))
        shared = fl.from_numpy(np.ones(n), ("dense",), name="T")
        with pytest.raises(BindingError):
            kernel.rebind({"A": shared, "C": shared})

    def test_compile_time_aliasing_survives_rebinding(self):
        """Tensors sharing storage at compile time must keep sharing."""
        data = np.zeros((4, 5))
        data[1, 2] = 2.0
        A = fl.from_numpy(data, ("dense", "sparse"), name="A")
        B = fl.Tensor(A.levels, A.element, name="B")  # same storage
        C = fl.Scalar(name="C")
        i, j = fl.indices("i", "j")
        kernel = fl.compile_kernel(fl.forall(i, fl.forall(
            j, fl.increment(C[()], A[i, j] * B[i, j]))))
        kernel.run()
        assert C.value == pytest.approx(4.0)
        A2 = fl.from_numpy(data, ("dense", "sparse"), name="A")
        B2_distinct = fl.from_numpy(data, ("dense", "sparse"), name="B")
        with pytest.raises(BindingError):
            kernel.rebind([C, A2, B2_distinct])
        B2_shared = fl.Tensor(A2.levels, A2.element, name="B")
        kernel.rebind([C, A2, B2_shared])
        kernel.run()
        assert C.value == pytest.approx(4.0)

    def test_outputs_track_rebinding(self):
        prog, C = dot_program(sparse_vec(30, 4, 1),
                              band_vec(30, 5, 20, 1))
        kernel = fl.compile_kernel(prog)
        assert kernel.outputs == [C]
        C_new = fl.Scalar(name="C")
        kernel.rebind(C=C_new)
        assert kernel.outputs == [C_new]


def kernel_two_tensors(program):
    """The program's tensors in slot order (test helper)."""
    from repro.cin.analyze import program_tensors

    return program_tensors(program)
