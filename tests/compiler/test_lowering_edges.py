"""Edge cases of the progressive lowerer.

Unit/integration coverage for corners the main suites don't hit:
statements other than assignments inside structured loops, empty
fibers, single-element extents, nested wheres, and the assembly-level
walking utilities.
"""

import numpy as np
import pytest

import repro.lang as fl
from repro.ir import Literal, Var, asm, ops
from repro.ir.asm import statement_exprs, walk_statements


class TestStructuredControlFlow:
    def test_sieve_inside_sparse_loop(self):
        vec = np.zeros(30)
        vec[[3, 7, 20]] = [1.0, 2.0, 3.0]
        A = fl.from_numpy(vec, ("sparse",), name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        # Only count nonzeros at even coordinates.
        prog = fl.forall(i, fl.sieve(
            fl.eq(fl.call(fl.ops.MOD, i, 2), 0),
            fl.increment(C[()], A[i])))
        fl.execute(prog)
        assert C.value == pytest.approx(3.0)  # only index 20 is even

    def test_multi_inside_sparse_loop(self):
        vec = np.zeros(20)
        vec[[2, 9]] = [4.0, 6.0]
        A = fl.from_numpy(vec, ("sparse",), name="A")
        total = fl.Scalar(name="total")
        count = fl.Scalar(name="count")
        i = fl.indices("i")
        prog = fl.forall(i, fl.multi(
            fl.increment(total[()], A[i]),
            fl.increment(count[()], fl.call(
                fl.ops.IFELSE, fl.ne(A[i], 0.0), 1.0, 0.0))))
        fl.execute(prog)
        assert total.value == pytest.approx(10.0)
        assert count.value == pytest.approx(2.0)

    def test_nested_where(self):
        mat = np.arange(12.0).reshape(3, 4)
        A = fl.from_numpy(mat, ("dense", "dense"), name="A")
        out = fl.zeros(3, name="out")
        row_sum = fl.Scalar(name="row_sum")
        i, j = fl.indices("i", "j")
        inner = fl.forall(j, fl.increment(row_sum[()], A[i, j]))
        prog = fl.forall(i, fl.where(
            fl.store(out[i], row_sum[()] * 2.0), inner))
        fl.execute(prog)
        np.testing.assert_allclose(out.to_numpy(), mat.sum(axis=1) * 2)

    def test_where_producer_with_sparse_inputs(self):
        vec = np.zeros(15)
        vec[[1, 8]] = [2.0, 5.0]
        A = fl.from_numpy(vec, ("sparse",), name="A")
        result = fl.zeros(1, name="result")
        temp = fl.Scalar(name="temp")
        i, k = fl.indices("i", "k")
        inner = fl.forall(i, fl.increment(temp[()], A[i] * A[i]))
        prog = fl.forall(k, fl.where(
            fl.store(result[k], fl.call(fl.ops.SQRT, temp[()])), inner),
            ext=(0, 1))
        fl.execute(prog)
        assert result.to_numpy()[0] == pytest.approx(
            np.sqrt((vec ** 2).sum()))


class TestDegenerateExtents:
    def test_length_one_dimension(self):
        A = fl.from_numpy(np.array([5.0]), ("sparse",), name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i])))
        assert C.value == 5.0

    def test_zero_length_dimension(self):
        A = fl.from_numpy(np.zeros(0), ("dense",), name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i])))
        assert C.value == 0.0

    def test_statically_empty_explicit_extent_emits_nothing(self):
        A = fl.from_numpy(np.ones(5), ("dense",), name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        kernel = fl.compile_kernel(
            fl.forall(i, fl.increment(C[()], A[i]), ext=(3, 3)))
        assert "for" not in kernel.source
        kernel.run()
        assert C.value == 0.0

    def test_all_empty_fibers_matrix(self):
        mat = np.zeros((4, 6))
        A = fl.from_numpy(mat, ("dense", "sparse"), name="A")
        B = fl.from_numpy(mat, ("dense", "vbl"), name="B")
        C = fl.Scalar(name="C")
        i, j = fl.indices("i", "j")
        fl.execute(fl.forall(i, fl.forall(j, fl.increment(
            C[()], A[i, j] * B[i, j]))))
        assert C.value == 0.0

    def test_single_stored_element(self):
        vec = np.zeros(100)
        vec[99] = 7.0  # at the very end of the dimension
        A = fl.from_numpy(vec, ("sparse",), name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i])))
        assert C.value == 7.0

    def test_first_element_stored(self):
        vec = np.zeros(50)
        vec[0] = 3.0
        A = fl.from_numpy(vec, ("sparse",), name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i])))
        assert C.value == 3.0


class TestOverwriteSemantics:
    def test_later_iterations_win(self):
        A = fl.from_numpy(np.array([1.0, 2.0, 3.0]), ("dense",),
                          name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.store(C[()], A[i])))
        assert C.value == 3.0

    def test_constant_overwrite_collapses_loop(self):
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        kernel = fl.compile_kernel(
            fl.forall(i, fl.store(C[()], fl.literal(9.0)), ext=(0, 1000)))
        assert "for" not in kernel.source
        kernel.run()
        assert C.value == 9.0

    def test_min_reduction_collapses_loop(self):
        m = fl.Scalar(name="m")
        i = fl.indices("i")
        kernel = fl.compile_kernel(fl.forall(
            i, fl.reduce_into(m[()], fl.ops.MIN, fl.literal(-2.0)),
            ext=(0, 500)))
        assert "for" not in kernel.source
        kernel.run()
        assert m.value == -2.0


class TestAsmUtilities:
    def test_walk_statements_covers_nesting(self):
        inner = asm.AssignStmt(Var("x"), Literal(1))
        loop = asm.ForLoop("i", 0, 3, inner)
        branch = asm.If([(Var("c"), loop)])
        kinds = [type(s).__name__ for s in walk_statements(branch)]
        # If bodies are Blocks; the loop body is a Block too.
        assert kinds == ["If", "Block", "ForLoop", "Block", "AssignStmt"]

    def test_statement_exprs(self):
        stmt = asm.AccumStmt(Var("acc"), ops.ADD, Var("v"))
        exprs = list(statement_exprs(stmt))
        assert Var("acc") in exprs and Var("v") in exprs

    def test_loop_bounds_are_exprs(self):
        loop = asm.ForLoop("i", Var("a"), Var("b"), asm.Block([]))
        exprs = list(statement_exprs(loop))
        assert exprs == [Var("a"), Var("b")]


class TestPipelineClipping:
    """Phase strides beyond the target stop or before its start must
    clip correctly (the min/max arithmetic of the pipeline pass)."""

    def _pipe_tensor(self, n, stride_value):
        from repro.formats.custom import LoopletTensor
        from repro.looplets import Phase, Pipeline, Run

        return LoopletTensor(n, lambda ctx, pos: Pipeline([
            Phase(Run(Literal(1.0)), stride=Literal(stride_value)),
            Phase(Run(Literal(10.0))),
        ]), name="P")

    def test_stride_beyond_stop(self):
        A = self._pipe_tensor(8, 100)
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i])))
        assert C.value == 8.0  # whole extent in phase one

    def test_stride_zero(self):
        A = self._pipe_tensor(8, 0)
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i])))
        assert C.value == 80.0  # whole extent in phase two

    def test_stride_interior(self):
        A = self._pipe_tensor(8, 3)
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i])))
        assert C.value == 3 * 1.0 + 5 * 10.0

    def test_two_pipelines_with_crossing_strides(self):
        A = self._pipe_tensor(10, 7)
        B = self._pipe_tensor(10, 3)
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i] * B[i])))
        # [0,3): 1*1, [3,7): 1*10, [7,10): 10*10
        assert C.value == 3 * 1 + 4 * 10 + 3 * 100
