"""The spec generator: determinism, grammar validity, reconstruction."""

import json

import numpy as np

from repro.fuzz import build_case, describe_spec, generate_spec
from repro.fuzz.gen import (
    FORMATS_ANY,
    FORMATS_LEAF_ONLY,
    LEADER_PROTOCOLS,
    PROTOCOLS_BY_FORMAT,
    _index_mode,
    _operand_dims,
    chain_extent,
)

SEEDS = range(60)


def test_same_seed_same_spec():
    for seed in SEEDS:
        assert generate_spec(seed) == generate_spec(seed)


def test_specs_are_json_round_trippable():
    for seed in SEEDS:
        spec = generate_spec(seed)
        assert json.loads(json.dumps(spec)) == spec


def test_distinct_seeds_explore_the_grammar():
    templates = set()
    formats = set()
    chain_kinds = set()
    protocols = set()
    for seed in range(200):
        spec = generate_spec(seed)
        templates.add(spec["template"])
        for operand in spec["operands"]:
            formats.update(operand["formats"])
            protocols.update(p for p in operand["protocols"] if p)
            chain_kinds.update(c["kind"] for c in operand["chains"])
    assert templates == {"reduce", "map", "reduce2d", "map2d", "spmv"}
    assert formats == set(FORMATS_ANY) | set(FORMATS_LEAF_ONLY)
    assert {"walk", "gallop", "locate", "follow"} <= protocols
    assert {"plain", "offset", "offset_exact", "offset2", "window",
            "offset_of_window"} <= chain_kinds


def test_leaf_only_formats_stay_innermost():
    for seed in range(200):
        for operand in generate_spec(seed)["operands"]:
            for fmt in operand["formats"][:-1]:
                assert fmt not in FORMATS_LEAF_ONLY


def test_protocols_respect_format_support():
    for seed in range(200):
        for operand in generate_spec(seed)["operands"]:
            for fmt, proto in zip(operand["formats"],
                                  operand["protocols"]):
                assert proto in PROTOCOLS_BY_FORMAT[fmt]


def test_every_loop_index_has_a_leader():
    for seed in range(200):
        spec = generate_spec(seed)
        index_count = 1 if spec["template"] in ("reduce", "map") else 2
        for index_pos in range(index_count):
            leaders = 0
            for operand in spec["operands"]:
                mode = _index_mode(spec["template"], index_pos, operand)
                if mode is not None \
                        and operand["protocols"][mode] in \
                        LEADER_PROTOCOLS:
                    leaders += 1
            assert leaders >= 1, (seed, index_pos, spec)


def test_built_cases_have_valid_extents():
    for seed in SEEDS:
        spec = generate_spec(seed)
        case = build_case(spec)
        for lo, hi in case.extents.values():
            assert 0 <= lo <= hi
        for operand, tensor in zip(spec["operands"], case.operands):
            dims = _operand_dims(operand)
            assert tensor.shape == dims
            np.testing.assert_array_equal(
                tensor.to_numpy(),
                np.array(operand["data"], dtype=float).reshape(dims))


def test_chain_extent_window_is_its_width():
    assert chain_extent({"kind": "window", "lo": 2, "hi": 7}, 10) \
        == (0, 5)
    assert chain_extent({"kind": "offset_exact", "delta": 3}, 8) \
        == (3, 8)
    assert chain_extent({"kind": "offset_exact", "delta": -3}, 8) \
        == (0, 5)


def test_describe_spec_is_one_line():
    for seed in SEEDS:
        description = describe_spec(generate_spec(seed))
        assert "\n" not in description
        assert description
