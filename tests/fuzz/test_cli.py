"""The ``python -m repro.fuzz`` command-line interface."""

import pytest

from repro.fuzz.__main__ import main


def test_small_campaign_passes(capsys, tmp_path):
    code = main(["--seed", "0", "--budget", "5", "--quiet",
                 "--corpus", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "result: PASS" in out
    assert not list(tmp_path.iterdir())  # nothing failed, no corpus


def test_list_bugs(capsys):
    code = main(["--list-bugs"])
    out = capsys.readouterr().out
    assert code == 0
    for name in ("vector-slice-short", "seek-overshoot",
                 "batch-drops-last"):
        assert name in out


def test_injected_campaign_succeeds_by_failing(capsys, tmp_path):
    code = main(["--seed", "0", "--budget", "30", "--quiet",
                 "--max-failures", "1", "--no-shrink",
                 "--corpus", str(tmp_path),
                 "--inject", "batch-drops-last"])
    out = capsys.readouterr().out
    assert code == 0
    assert "caught and shrunk as intended" in out
    assert list(tmp_path.glob("*.json")), "repro was not persisted"


def test_replay_mode(capsys, tmp_path):
    from repro.fuzz import generate_spec, save_entry

    save_entry(generate_spec(2), corpus_dir=str(tmp_path))
    code = main(["--replay", "--corpus", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "result: PASS" in out


def test_replay_mode_fails_on_divergent_entry(capsys, tmp_path,
                                              monkeypatch):
    from repro.fuzz import generate_spec, save_entry
    from repro.fuzz import corpus as corpus_mod
    from repro.fuzz.conform import CaseReport, Divergence

    spec = generate_spec(2)
    save_entry(spec, corpus_dir=str(tmp_path))

    def fake_conform(spec, profile="quick"):
        return CaseReport(spec, [Divergence("a", "b", "output", "x")],
                          ("a", "b"), 0.0)

    monkeypatch.setattr(corpus_mod, "conform_spec", fake_conform)
    code = main(["--replay", "--corpus", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL" in out


def test_unknown_profile_rejected():
    with pytest.raises(SystemExit):
        main(["--profile", "nope"])
