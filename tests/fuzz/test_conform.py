"""The conformance runner: oracle battery, reports, public API."""

import numpy as np

import repro.lang as fl
from repro.fuzz import ORACLES, conform_spec, fuzz_one, generate_spec


def test_fuzz_one_passes_on_fixed_seeds():
    for seed in (0, 1, 7, 23):
        report = fuzz_one(seed)
        assert report.ok, report.summary()
        assert report.oracles_run == ORACLES
        assert report.seconds >= 0


def test_fuzz_one_is_the_lang_surface_api():
    assert fl.fuzz_one is fuzz_one
    report = fl.fuzz_one(3)
    assert report.ok, report.summary()


def test_compare_flags_value_and_shape_mismatches():
    from repro.fuzz.conform import Divergence, _compare

    divergences = []
    _compare(divergences, "a", "b", np.array([1.0, 2.0]),
             np.array([1.0, 2.0]))
    assert divergences == []
    _compare(divergences, "a", "b", np.array([1.0, 2.0]),
             np.array([1.0, 3.0]))
    _compare(divergences, "a", "b", np.array([1.0, 2.0]),
             np.array([1.0]))
    assert len(divergences) == 2
    assert all(isinstance(d, Divergence) for d in divergences)
    assert divergences[0].pair == "a vs b"
    assert "max|delta|=1.0" in str(divergences[0])
    assert "shape" in str(divergences[1])


def test_report_summary_mentions_the_shape():
    report = fuzz_one(11)
    assert report.summary().startswith("ok: ")


def test_zero_trip_loops_conform():
    """An empty extent intersection is legal and must agree too."""
    spec = {
        "seed": -1, "template": "map", "combine": "mul",
        "operands": [{
            "name": "T0", "data": [1.0, 2.0, 3.0],
            "formats": ["sparse"], "protocols": [None],
            "chains": [{"kind": "window", "lo": 1, "hi": 1}],
        }],
        "store": True,
    }
    report = conform_spec(spec)
    assert report.ok, report.summary()


def test_scalar_and_vector_outputs_both_snapshot():
    for seed in range(20):
        spec = generate_spec(seed)
        if spec["template"] in ("reduce", "reduce2d"):
            report = conform_spec(spec)
            assert report.ok, report.summary()
            break
    else:  # pragma: no cover - seed range always contains a reduce
        raise AssertionError("no reduce template in the seed range")
