"""The catch-shrink-persist pipeline, proven against planted bugs.

These are the conformance engine's teeth: for every registered
injectable bug the campaign must (1) find a divergent case, (2) shrink
it to something strictly smaller that still diverges, and (3) render a
standalone repro script of at most 15 lines that fails while the bug
lives and passes once it is gone.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.fuzz import (
    conform_spec,
    generate_spec,
    injectable_bugs,
    injected_bug,
    repro_script,
    run_fuzz,
    shrink_spec,
    spec_size,
)

#: Budget that catches every registered bug (measured with margin).
_CATCH_BUDGET = 30


def test_registry_lists_three_layer_bugs():
    bugs = injectable_bugs()
    assert set(bugs) == {"vector-slice-short", "seek-overshoot",
                         "batch-drops-last"}
    assert all(isinstance(desc, str) and desc for desc in bugs.values())


def test_unknown_bug_name_is_rejected():
    with pytest.raises(KeyError, match="unknown injectable bug"):
        with injected_bug("no-such-bug"):
            pass  # pragma: no cover


@pytest.mark.parametrize("bug", sorted(injectable_bugs()))
def test_campaign_catches_every_injectable_bug(bug):
    with injected_bug(bug):
        result = run_fuzz(seed=0, budget=_CATCH_BUDGET,
                          corpus_dir=None, shrink=False,
                          max_failures=1)
        assert result.failures, \
            "bug %r survived %d cases" % (bug, result.cases)
    # The tree is healthy again once the injection exits.
    assert conform_spec(result.failures[0].report.spec).ok


def test_shrink_reduces_and_preserves_failure():
    with injected_bug("vector-slice-short"):
        result = run_fuzz(seed=0, budget=_CATCH_BUDGET,
                          corpus_dir=None, shrink=False,
                          max_failures=1)
        original = result.failures[0].report.spec
        shrunk, steps = shrink_spec(original)
        assert steps > 0
        assert spec_size(shrunk) < spec_size(original)
        assert not conform_spec(shrunk).ok
    assert conform_spec(shrunk).ok  # healthy tree: repro passes


def test_repro_script_is_at_most_15_lines_and_replays(tmp_path):
    with injected_bug("vector-slice-short"):
        result = run_fuzz(seed=0, budget=_CATCH_BUDGET,
                          corpus_dir=str(tmp_path), max_failures=1)
        assert result.failures
        failure = result.failures[0]
    script = repro_script(failure.shrunk)
    assert len(script.strip().splitlines()) <= 15
    # The persisted .py twin replays clean on the healthy tree.
    scripts = sorted(tmp_path.glob("*.py"))
    assert scripts
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, str(scripts[0])],
                          capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr
    # And the persisted .json remembers what diverged when written.
    entries = sorted(tmp_path.glob("*.json"))
    entry = json.loads(entries[0].read_text())
    assert entry["divergences"], "corpus entry lost its divergences"


def test_shrink_returns_input_when_nothing_fails():
    spec = generate_spec(4)
    shrunk, steps = shrink_spec(spec)
    assert steps == 0
    assert shrunk == spec


def test_shrink_candidates_stay_in_grammar():
    """Every reduction of a healthy spec must itself build and
    conform — the shrinker never leaves the generator grammar."""
    from repro.fuzz.shrink import _candidates

    spec = generate_spec(17)
    seen = 0
    for candidate in _candidates(spec):
        report = conform_spec(candidate)
        assert report.ok, report.summary()
        seen += 1
        if seen >= 12:  # a sample is plenty; candidates number dozens
            break
    assert seen
