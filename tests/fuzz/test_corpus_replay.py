"""Regression replay: every committed corpus entry conforms, forever.

The entries under ``fuzz_corpus/`` are grammar-coverage anchors plus
shrunk repros of bugs that have since been fixed.  Replaying them as
ordinary pytest cases turns every past failure into a permanent
regression test — this module is the reason corpus entries are
committed alongside their fixes.
"""

from pathlib import Path

import pytest

from repro.fuzz import conform_spec, load_entry, save_entry
from repro.fuzz.corpus import corpus_entries, entry_name, replay_corpus

CORPUS_DIR = Path(__file__).resolve().parents[2] / "fuzz_corpus"

_ENTRIES = corpus_entries(str(CORPUS_DIR))


def test_committed_corpus_is_not_empty():
    assert len(_ENTRIES) >= 5, \
        "the committed corpus should carry its anchors"


@pytest.mark.parametrize(
    "path", _ENTRIES, ids=[Path(p).stem for p in _ENTRIES])
def test_corpus_entry_conforms(path):
    entry = load_entry(path)
    report = conform_spec(entry["spec"],
                          profile=entry.get("profile", "quick"))
    assert report.ok, report.summary()


def test_corpus_carries_the_fixed_dce_repro():
    """The while-loop DCE liveness bug the fuzzer found (and PR 4
    fixed) must stay in the corpus as a named regression."""
    notes = [load_entry(path).get("note", "") for path in _ENTRIES]
    assert any("while-loop DCE" in note for note in notes)


def test_save_and_load_round_trip(tmp_path):
    entry_spec = {"seed": 99, "template": "reduce", "combine": "mul",
                  "operands": [{"name": "T0", "data": [1.0, 0.0, 2.0],
                                "formats": ["sparse"],
                                "protocols": [None],
                                "chains": [{"kind": "plain"}]}],
                  "accum": "add"}
    path = save_entry(entry_spec, corpus_dir=str(tmp_path),
                      note="round trip")
    entry = load_entry(path)
    assert entry["spec"] == entry_spec
    assert entry["note"] == "round trip"
    assert entry_name(entry_spec) in path
    twin = Path(path).with_suffix(".py")
    assert twin.exists()
    reports, failures = replay_corpus(str(tmp_path))
    assert not failures
    assert list(reports) == [path]


def test_replay_corpus_handles_missing_directory(tmp_path):
    reports, failures = replay_corpus(str(tmp_path / "nope"))
    assert reports == {} and failures == []
