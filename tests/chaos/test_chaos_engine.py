"""The chaos engine itself: plans, firing rules, scoping, hygiene.

The engine is test infrastructure, so it gets the same rigor as the
code it attacks: a chaos layer that silently injects nothing (typo'd
fault name, stale environment, non-deterministic probability draws)
would turn every fault-tolerance test into a vacuous pass.
"""

import os

import pytest

from repro import chaos
from repro.chaos.campaign import expected_status, run_campaign


def test_plan_parse_encode_roundtrip():
    text = "slow_chunk:p=0.5,seed=3,delay_s=0.01;worker_crash:nth=1"
    plan = chaos.parse_plan(text)
    assert set(plan) == {"slow_chunk", "worker_crash"}
    assert plan["slow_chunk"].p == 0.5
    assert plan["slow_chunk"].seed == 3
    assert plan["slow_chunk"].params == {"delay_s": 0.01}
    assert plan["worker_crash"].nth == 1
    again = chaos.parse_plan(chaos.encode_plan(plan))
    assert chaos.encode_plan(again) == chaos.encode_plan(plan)


def test_unknown_fault_name_rejected():
    """A typo'd fault point must raise, not silently inject nothing."""
    with pytest.raises(ValueError, match="unknown fault point"):
        chaos.parse_plan("definately_a_fault:nth=1")
    with pytest.raises(ValueError, match="unknown fault point"):
        chaos.Fault("definately_a_fault")


def test_p_and_nth_are_mutually_exclusive():
    with pytest.raises(ValueError, match="mutually exclusive"):
        chaos.Fault("slow_chunk", p=0.5, nth=1)


def test_nth_fires_exactly_once():
    with chaos.chaos("slow_chunk", nth=2, delay_s=0.0):
        fired = [chaos.should_fire("slow_chunk") is not None
                 for _ in range(5)]
    assert fired == [False, True, False, False, False]


def test_index_rule_scopes_eligibility():
    """Hits carrying the wrong dataset index are not even counted."""
    with chaos.chaos("worker_stall", index=3, nth=1, stall_s=0.0):
        assert chaos.should_fire("worker_stall", index=1) is None
        assert chaos.should_fire("worker_stall", index=None) is None
        params = chaos.should_fire("worker_stall", index=3)
        assert params == {"stall_s": 0.0}


def test_probability_draws_are_seed_deterministic():
    def draws(seed):
        with chaos.chaos("slow_chunk", p=0.5, seed=seed, delay_s=0.0):
            return [chaos.should_fire("slow_chunk") is not None
                    for _ in range(32)]

    assert draws(7) == draws(7)
    assert draws(7) != draws(8)
    assert any(draws(7)) and not all(draws(7))


def test_context_manager_restores_env_and_removes_state():
    assert not chaos.active()
    with chaos.chaos("worker_crash", nth=1):
        assert chaos.active()
        state = os.environ[chaos.ENV_STATE]
        assert os.path.isdir(state)
        assert "worker_crash" in os.environ[chaos.ENV_PLAN]
    assert not chaos.active()
    assert chaos.ENV_PLAN not in os.environ
    assert not os.path.isdir(state)


def test_chaos_accepts_plan_string_and_mapping():
    with chaos.chaos("worker_crash:nth=1;slow_chunk:p=0.25") as plan:
        assert set(plan) == {"worker_crash", "slow_chunk"}
    with chaos.chaos({"worker_stall": {"index": 2, "stall_s": 1}}) as plan:
        assert plan["worker_stall"].index == 2
    with pytest.raises(ValueError):
        with chaos.chaos():
            pass


def test_apply_env_makes_sender_authoritative():
    """apply_env both arms and disarms — the disarm half is what keeps
    a fork-inherited plan from outliving the sender's with-block."""
    pair = None
    with chaos.chaos("worker_crash", nth=1):
        pair = chaos.current_env()
    chaos.apply_env(pair)
    try:
        assert chaos.active()
    finally:
        chaos.apply_env((None, None))
    assert not chaos.active()


def test_mangle_corrupts_only_when_armed():
    payload = '{"ok": true}'
    assert chaos.mangle("store_corrupt_entry", payload) == payload
    with chaos.chaos("store_corrupt_entry", nth=1):
        garbled = chaos.mangle("store_corrupt_entry", payload)
        untouched = chaos.mangle("store_corrupt_entry", payload)
    assert garbled != payload and garbled.endswith("#chaos#")
    assert untouched == payload  # nth=1 already consumed


def test_inject_is_noop_when_inactive():
    assert chaos.inject("worker_stall") is False
    assert chaos.inject("slow_chunk") is False


def test_fault_points_registry_is_exported():
    points = chaos.fault_points()
    assert set(points) == {
        "worker_crash", "worker_stall", "shm_attach_fail",
        "store_read_error", "store_corrupt_entry", "slow_chunk",
        "service_unreachable"}
    assert all(points.values())


def test_expected_status_matrix():
    assert expected_status("worker_crash", "processes",
                           "raise") == "typed-error"
    assert expected_status("worker_crash", "processes",
                           "degrade") == "identical"
    assert expected_status("worker_stall", "processes",
                           "skip") == "skip-partial"
    assert expected_status("worker_crash", "threads",
                           "raise") == "identical"
    assert expected_status("store_read_error", "processes",
                           "raise") == "identical"


def test_reduced_campaign_is_clean():
    """A slice of the real campaign — one worker fault, one store
    fault, serial + processes, two policies — must hold every
    invariant end to end."""
    report = run_campaign(seed=3,
                          faults=["worker_crash", "store_read_error"],
                          executors=["serial", "processes"],
                          policies=["degrade", "skip"], count=4)
    assert report["violations"] == 0, [
        case for case in report["cases"] if case["violations"]]
    assert len(report["cases"]) == 8
    by_key = {(case["fault"], case["executor"], case["policy"]): case
              for case in report["cases"]}
    assert by_key[("worker_crash", "processes",
                   "degrade")]["status"] == "identical"
    assert by_key[("worker_crash", "processes",
                   "skip")]["status"] == "skip-partial"
    assert by_key[("worker_crash", "processes",
                   "degrade")]["faults"]["crashes"] >= 1
