"""Unit tests for the workload generators (dataset substitutes)."""

import numpy as np

from repro.workloads import graphs, images, matrices


class TestMatrices:
    def test_banded_structure(self):
        mat = matrices.banded_matrix(20, 2, seed=0)
        rows, cols = np.nonzero(mat)
        assert np.all(np.abs(rows - cols) <= 2)
        assert np.all(mat[np.arange(20), np.arange(20)] != 0)

    def test_clustered_rows_have_contiguous_blocks(self):
        mat = matrices.clustered_matrix(10, 40, 2, 6, seed=1)
        for row in mat:
            support = np.nonzero(row)[0]
            if len(support) == 0:
                continue
            breaks = np.sum(np.diff(support) > 1)
            assert breaks <= 4  # at most clusters_per_row blocks (merged)

    def test_block_matrix_alignment(self):
        mat = matrices.block_matrix(24, 6, 0.5, seed=2)
        blocks = mat.reshape(4, 6, 4, 6).transpose(0, 2, 1, 3)
        for bi in range(4):
            for bj in range(4):
                tile = blocks[bi, bj]
                assert np.all(tile == 0) or np.all(tile != 0)

    def test_sparse_vector_count(self):
        vec = matrices.sparse_vector(50, count=7, seed=3)
        assert np.count_nonzero(vec) == 7

    def test_sparse_vector_density(self):
        vec = matrices.sparse_vector(2000, density=0.25, seed=4)
        assert 0.2 < np.count_nonzero(vec) / 2000 < 0.3

    def test_sparse_vector_requires_a_regime(self):
        import pytest

        with pytest.raises(ValueError):
            matrices.sparse_vector(10)

    def test_suite_is_reproducible(self):
        first = matrices.harwell_boeing_like_suite(60, seed=5)
        second = matrices.harwell_boeing_like_suite(60, seed=5)
        for name in first:
            np.testing.assert_array_equal(first[name], second[name])

    def test_arrow_matrix_shape(self):
        mat = matrices.arrow_matrix(30, 3, seed=6)
        assert np.all(mat[:3, :] != 0)
        assert np.all(mat[:, :3] != 0)
        assert np.all(np.diag(mat) != 0)


class TestGraphs:
    def test_adjacency_is_symmetric_boolean(self):
        adj = graphs.power_law_adjacency(60, 2.2, 2, seed=0)
        np.testing.assert_array_equal(adj, adj.T)
        assert set(np.unique(adj)) <= {0.0, 1.0}
        assert np.all(np.diag(adj) == 0)

    def test_power_law_has_skewed_degrees(self):
        adj = graphs.power_law_adjacency(200, 2.0, 2, seed=1)
        degrees = adj.sum(axis=1)
        assert degrees.max() > 4 * np.median(degrees[degrees > 0])

    def test_hub_adjacency(self):
        adj = graphs.hub_adjacency(40, hubs=2, p=0.01, seed=2)
        degrees = adj.sum(axis=1)
        assert degrees[0] == 39
        assert degrees[1] == 39

    def test_csr_roundtrip(self):
        adj = graphs.erdos_renyi_adjacency(25, 0.2, seed=3)
        pos, idx = graphs.adjacency_to_csr(adj)
        rebuilt = np.zeros_like(adj)
        for i in range(25):
            rebuilt[i, idx[pos[i]:pos[i + 1]]] = 1.0
        np.testing.assert_array_equal(rebuilt, adj)

    def test_triangle_reference_on_known_graph(self):
        adj = np.zeros((4, 4))
        for a, b in [(0, 1), (1, 2), (0, 2), (2, 3)]:
            adj[a, b] = adj[b, a] = 1.0
        # one triangle -> trace(A^3) = 6
        assert graphs.triangle_count_reference(adj) == 6.0


class TestImages:
    def test_digit_background_dominates(self):
        img = images.digit_like(28, seed=0)
        assert (img == 0).mean() > 0.5
        assert img.dtype == np.uint8

    def test_character_background_is_nonzero_constant(self):
        img = images.character_like(32, seed=1)
        values, counts = np.unique(img, return_counts=True)
        assert values[np.argmax(counts)] == 8  # paper-tone background

    def test_sketch_is_sparse(self):
        img = images.sketch_like(64, seed=2)
        assert (img == 0).mean() > 0.6

    def test_batches_are_stacked(self):
        batch = images.image_batch("digit", 3, seed=3)
        assert batch.shape == (3, 28, 28)
        linear = images.linearized_batch("digit", 3, seed=3)
        assert linear.shape == (3, 28 * 28)
        np.testing.assert_array_equal(linear[0], batch[0].ravel())

    def test_run_fraction_measure(self):
        flat_runs = np.zeros((4, 4), dtype=np.uint8)
        assert images.background_run_fraction(flat_runs) == 1.0
        noisy = np.arange(16, dtype=np.uint8).reshape(4, 4)
        assert images.background_run_fraction(noisy) == 0.0
