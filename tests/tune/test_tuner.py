"""The autotuner engine end to end: search, verify, persist, apply.

The contract under test: every persisted winner was proven
bit-identical to the reference interpreter before it could compete; a
version-axis bump makes old winners read as misses; and a fresh
process with ``tune="apply"`` compiles the tuned variant with zero
search and zero extra compiles (two disk reads).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro.lang as fl
from repro.compiler.kernel import kernel_cache
from repro.fuzz import injected_bug
from repro.ir import ops as ops_mod
from repro.store import KernelStore, reset_store_config, using_store
from repro.tune import clear_tuning_memo, lookup_schedule, tune_program

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    monkeypatch.delenv("FL_KERNEL_TUNE", raising=False)
    monkeypatch.delenv("FL_KERNEL_STORE", raising=False)
    kernel_cache().clear()
    reset_store_config()
    clear_tuning_memo()
    yield
    kernel_cache().clear()
    reset_store_config()
    clear_tuning_memo()


def dot_case(n=80, seed=0):
    rng = np.random.default_rng(seed)
    a = np.zeros(n)
    a[rng.choice(n, 8, replace=False)] = rng.random(8) + 0.1
    b = np.zeros(n)
    b[10:60] = rng.random(50) + 0.1
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    program = fl.forall(i, fl.increment(C[()], A[i] * B[i]))
    return program, C, float(np.dot(a, b))


def run_search(store, **kwargs):
    kwargs.setdefault("opt_levels", (1, 2))
    kwargs.setdefault("backends", ("python",))
    kwargs.setdefault("repeats", 1)
    kwargs.setdefault("warmup", 0)
    return tune_program(lambda: dot_case()[0], label="dot",
                        store=store, **kwargs)


def test_search_verifies_persists_and_apply_hits(tmp_path):
    store = KernelStore(tmp_path)
    result = run_search(store)
    assert result["schedule"] is not None
    assert result["verified"] == result["measured"] - result["errors"]
    assert result["verified"] >= 2
    assert result["rejected"] == 0
    assert result["persisted"] and os.path.exists(result["persisted"])
    stats = store.stats()
    assert stats["tunings"] == 1
    assert stats["tuning_writes"] == 1

    # A fresh-looking process: cold kernel cache, cold memo.
    kernel_cache().clear()
    clear_tuning_memo()
    program, C, expected = dot_case()
    with using_store(store):
        assert lookup_schedule(program) == result["schedule"]
        kernel = fl.compile_kernel(program, tune="apply")
        assert kernel.tuned
        # The search compiled the winner under this store, so applying
        # it is a cache hit, not a recompile.
        assert kernel.from_cache
        kernel.run()
        assert C.value == pytest.approx(expected)
        # tune="off" (the default) leaves the program as written.
        assert not fl.compile_kernel(program, tune="off").tuned
    assert store.stats()["tuning_hits"] >= 1


def test_registry_bump_invalidates_winner(tmp_path):
    store = KernelStore(tmp_path)
    result = run_search(store)
    assert result["persisted"]
    program, _, _ = dot_case()
    version_before = ops_mod.registry_version()
    try:
        with using_store(store):
            assert lookup_schedule(program) is not None
            misses_before = store.stats()["tuning_misses"]
            # A late op registration changes the runtime namespace
            # kernels exec against; a winner measured under the old
            # registry must read as a miss, exactly like a stored
            # kernel entry would.
            ops_mod.register_op(ops_mod.Op("tune_test_noop",
                                           lambda x: x))
            kernel_cache().clear()
            clear_tuning_memo()
            assert lookup_schedule(program) is None
            assert store.stats()["tuning_misses"] > misses_before
            kernel = fl.compile_kernel(program, tune="apply")
            assert not kernel.tuned  # the program as written
    finally:
        # Leave the registry exactly as found (content and version):
        # later tests key stores by registry_version, and a subprocess
        # imports the pristine registry.
        ops_mod._REGISTRY.pop("tune_test_noop", None)
        ops_mod._REGISTRY_VERSION = version_before
        kernel_cache().clear()
        clear_tuning_memo()


def test_divergent_candidates_are_never_persisted(tmp_path):
    # vector-slice-short breaks opt_level-2 dense loops; budget=1
    # keeps only the baseline candidate (dense/dense at opt 2), so
    # every measured candidate diverges and nothing may be persisted,
    # no matter how fast the wrong answer was.
    store = KernelStore(tmp_path)

    def make_program():
        a = np.arange(1.0, 13.0)
        b = np.arange(2.0, 14.0)
        A = fl.from_numpy(a, ("dense",), name="A")
        B = fl.from_numpy(b, ("dense",), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        return fl.forall(i, fl.increment(C[()], A[i] * B[i]))

    with injected_bug("vector-slice-short"):
        result = tune_program(make_program, label="buggy dot",
                              opt_levels=(2,), backends=("python",),
                              budget=1, repeats=1, warmup=0,
                              store=store)
    assert result["measured"] == 1
    assert result["rejected"] == 1
    assert result["verified"] == 0
    assert result["schedule"] is None
    assert result["persisted"] is None
    assert store.stats()["tunings"] == 0
    assert store.stats()["tuning_writes"] == 0

    # The same search on the healthy tree persists a verified winner.
    # (A fresh store: the buggy run legitimately cached its candidate
    # *artifacts* — the injection monkeypatches a pass the pipeline
    # fingerprint cannot see — and only the tunings table is gated.)
    healthy = tune_program(make_program, label="healthy dot",
                           opt_levels=(2,), backends=("python",),
                           budget=1, repeats=1, warmup=0,
                           store=KernelStore(tmp_path / "healthy"))
    assert healthy["rejected"] == 0
    assert healthy["persisted"]


def test_unverifiable_program_is_skipped_not_persisted(
        tmp_path, monkeypatch):
    # A program the reference interpreter cannot execute (fig10_alpha's
    # output-builder tensors are the real case): no candidate can ever
    # be verified, so the search must skip honestly, not crash and not
    # persist.
    store = KernelStore(tmp_path)
    from repro.fuzz import conform

    def no_reference(program):
        raise AttributeError("interpreter cannot run this program")

    monkeypatch.setattr(conform, "reference_outputs", no_reference)
    result = tune_program(lambda: dot_case()[0], label="broken",
                          store=store, repeats=1, warmup=0)
    assert result["unverifiable"]
    assert result["schedule"] is None
    assert result["persisted"] is None
    assert store.stats()["tunings"] == 0


_PROGRAM_SNIPPET = (
    "import numpy as np\n"
    "import repro.lang as fl\n"
    "rng = np.random.default_rng(0)\n"
    "a = np.zeros(80)\n"
    "a[rng.choice(80, 8, replace=False)] = rng.random(8) + 0.1\n"
    "b = np.zeros(80)\n"
    "b[10:60] = rng.random(50) + 0.1\n"
    "def make_program():\n"
    "    A = fl.from_numpy(a, ('sparse',), name='A')\n"
    "    B = fl.from_numpy(b, ('band',), name='B')\n"
    "    C = fl.Scalar(name='C')\n"
    "    i = fl.indices('i')\n"
    "    prog = fl.forall(i, fl.increment(C[()], A[i] * B[i]))\n"
    "    return prog, C\n")


def _run_probe(script, store_path, tune=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["FL_KERNEL_STORE"] = str(store_path)
    env.pop("FL_KERNEL_TUNE", None)
    if tune is not None:
        env["FL_KERNEL_TUNE"] = tune
    proc = subprocess.run([sys.executable, "-c", script],
                          capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_fresh_process_applies_with_zero_search_and_zero_compiles(
        tmp_path):
    # Search in one process, apply in a genuinely fresh second one.
    # (Both subprocesses, so both see the pristine op registry — the
    # surrounding suite legitimately bumps it in-process, which is
    # exactly the invalidation axis and must not leak in here.)
    search = _PROGRAM_SNIPPET + (
        "import json\n"
        "from repro.store import KernelStore, using_store\n"
        "from repro.tune import tune_program\n"
        "import os\n"
        "store = KernelStore(os.environ['FL_KERNEL_STORE'])\n"
        "result = tune_program(lambda: make_program()[0],\n"
        "                      opt_levels=(1, 2),\n"
        "                      backends=('python',),\n"
        "                      repeats=1, warmup=0, store=store)\n"
        "print(json.dumps({'persisted': bool(result['persisted']),\n"
        "                  'stats': store.stats()}))\n")
    searched = _run_probe(search, tmp_path)
    assert searched["persisted"]
    writes_before = searched["stats"]["writes"]

    apply = _PROGRAM_SNIPPET + (
        "import json\n"
        "from repro.store import active_store\n"
        "program, C = make_program()\n"
        "kernel = fl.compile_kernel(program)\n"
        "kernel.run()\n"
        "print(json.dumps({'tuned': kernel.tuned,\n"
        "                  'from_cache': kernel.from_cache,\n"
        "                  'value': C.value,\n"
        "                  'stats': active_store().stats()}))\n")
    report = _run_probe(apply, tmp_path, tune="apply")
    assert report["tuned"] is True
    assert report["from_cache"] is True  # zero compiles: artifact hit
    assert report["value"] == pytest.approx(dot_case()[2])
    # Zero search: the fresh process wrote nothing, read everything.
    assert report["stats"]["writes"] == writes_before
    assert report["stats"]["tuning_writes"] == 1
    assert report["stats"]["tuning_hits"] >= 1


def test_cli_tunes_a_figure_and_emits_markdown(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("FL_KERNEL_TUNE", None)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.tune",
         "--figures", "fig1_dot", "--budget", "4", "--repeats", "1",
         "--warmup", "0", "--backends", "python",
         "--store", str(tmp_path), "--markdown"],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr
    assert "| fig1_dot |" in proc.stdout
    assert "tuned 1 program(s)" in proc.stdout
    store = KernelStore(tmp_path)
    assert store.stats()["tunings"] == 1
    assert list(store.tunings())
