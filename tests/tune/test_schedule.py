"""The schedule layer: extraction, rewriting, keys, enumeration.

A schedule must round-trip losslessly through the one canonical
access order, map every protocol spelling of a program onto one
protocol-erased table address, and enumerate only *legal* candidates
(every coiterated loop keeps a leader).
"""

import numpy as np
import pytest

import repro.lang as fl
from repro.cin.analyze import structural_digest, structural_key
from repro.cin.nodes import collect_accesses
from repro.tune import (
    apply_schedule,
    describe_schedule,
    enumerate_candidates,
    extract_protocols,
    neutral_digest,
    tunable_sites,
    tuning_key_meta,
    validate_schedule,
)
from repro.tune.schedule import LEADER_PROTOCOLS, apply_protocols
from repro.util.errors import ReproError


def dot_data(n=40, seed=0):
    rng = np.random.default_rng(seed)
    a = np.zeros(n)
    a[rng.choice(n, 6, replace=False)] = rng.random(6) + 0.1
    b = np.zeros(n)
    b[5:25] = rng.random(20) + 0.1
    return a, b


def dot_program(a_fmt="sparse", b_fmt="band", n=40, seed=0):
    a, b = dot_data(n=n, seed=seed)
    A = fl.from_numpy(a, (a_fmt,), name="A")
    B = fl.from_numpy(b, (b_fmt,), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i])), C


def test_protocols_round_trip():
    program, _ = dot_program()
    protocols = extract_protocols(program)
    rebuilt = apply_protocols(program, protocols)
    assert extract_protocols(rebuilt) == protocols
    assert structural_key(rebuilt) == structural_key(program)
    # Tensors are shared, not copied: the rewrite binds the same data.
    assert [a.tensor for a in collect_accesses(rebuilt)] \
        == [a.tensor for a in collect_accesses(program)]


def test_apply_rejects_wrong_shapes():
    program, _ = dot_program()
    with pytest.raises(ReproError, match="access protocol entries"):
        apply_protocols(program, [[None]])
    with pytest.raises(ReproError, match="modes"):
        apply_protocols(program, [[], [None, None], [None]])


def test_neutral_digest_erases_protocol_spelling():
    program, _ = dot_program()
    gallop = apply_protocols(program, [[], ["gallop"], [None]])
    # Different programs to the compiler (protocols are structural) ...
    assert structural_digest(structural_key(gallop)) \
        != structural_digest(structural_key(program))
    # ... but one row in the winners table.
    assert neutral_digest(gallop) == neutral_digest(program)
    assert tuning_key_meta(gallop) == tuning_key_meta(program)
    # A genuinely different program keys a different row.
    assert neutral_digest(dot_program(a_fmt="dense")[0]) \
        != neutral_digest(program)


def test_tuning_key_carries_version_axes_but_no_compile_options():
    meta = tuning_key_meta(dot_program()[0])
    assert meta["kind"] == "tuning"
    for axis in ("store_version", "tune_version", "registry_version",
                 "pipeline_fingerprint", "codegen_fingerprint"):
        assert meta[axis], axis
    assert "opt_level" not in meta and "backend" not in meta


def test_tunable_sites_skip_writes_and_single_protocol_formats():
    # A is sparse_list (walk|gallop): one searchable site.  B is band
    # (walk only) and C is the written scalar: neither is a site.
    program, _ = dot_program()
    assert tunable_sites(program) == [(1, 0, (None, "gallop"))]


def test_enumerate_candidates_defaults_first_and_stays_legal():
    # bitmap and dense both offer locate; locate-everywhere leaves the
    # i loop without a leader and must be filtered out.
    program, _ = dot_program(a_fmt="bitmap", b_fmt="dense")
    candidates = enumerate_candidates(program, opt_levels=(1, 2),
                                      backends=("python",))
    first = candidates[0]
    assert first["protocols"] == extract_protocols(program)
    assert first["opt_level"] == 2 and first["backend"] == "python"
    keys = {(tuple(map(tuple, c["protocols"])), c["opt_level"],
             c["backend"]) for c in candidates}
    assert len(keys) == len(candidates)  # no duplicate candidates
    for candidate in candidates:
        assert validate_schedule(program, candidate)
        on_i = [entry[0] for entry in candidate["protocols"] if entry]
        assert any(p in LEADER_PROTOCOLS for p in on_i)
    # Both single-site locate mutations are present, just never both.
    assert {tuple(map(tuple, c["protocols"])) for c in candidates} \
        >= {((), ("locate",), (None,)), ((), (None,), ("locate",))}


def test_validate_schedule_rejects_misfits():
    program, _ = dot_program()
    good = enumerate_candidates(program)[0]
    assert validate_schedule(program, good)
    assert not validate_schedule(program, None)
    assert not validate_schedule(program, {**good, "protocols": [[]]})
    assert not validate_schedule(
        program, {**good, "protocols": [[], ["sprint"], [None]]})
    assert not validate_schedule(program, {**good, "opt_level": "2"})
    assert not validate_schedule(program, {**good, "backend": "rust"})
    # A winner recorded for a structurally different program (here:
    # fewer accesses) must read as a misfit, never be applied.
    A = fl.from_numpy(dot_data()[0], ("sparse",), name="A")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    smaller = fl.forall(i, fl.increment(C[()], A[i]))
    assert not validate_schedule(smaller, good)


def test_describe_schedule_is_compact():
    schedule = {"protocols": [[], ["gallop"], [None]],
                "opt_level": 2, "backend": None}
    assert describe_schedule(schedule) == "/gallop/- @2 python"


def test_applied_schedule_computes_the_same_answer():
    program, C = dot_program()
    a, b = dot_data()
    candidate = {"protocols": [[], ["gallop"], [None]],
                 "opt_level": 1, "backend": "python"}
    variant = apply_schedule(program, candidate)
    assert extract_protocols(variant) == candidate["protocols"]
    kernel = fl.compile_kernel(variant, opt_level=1, cache=False)
    kernel.run()
    # The variant shares the original tensors, so the original C holds
    # the result: protocols change strategy, never the math.
    assert C.value == pytest.approx(float(np.dot(a, b)))
