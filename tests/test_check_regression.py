"""Unit tests for the benchmark-regression gate's comparison logic.

``benchmarks/check_regression.py`` is a standalone script (not part of
the package), so it is loaded by file path here.  These tests pin the
CI gate's semantics: >30% run-time regressions, speedup drops, op-count
growth, determinism flips, and absolute speedup-gate misses all fail;
noise inside tolerance passes.
"""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(os.path.dirname(__file__), os.pardir,
                       "benchmarks", "check_regression.py")


def load_checker():
    spec = importlib.util.spec_from_file_location("check_regression",
                                                  _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = load_checker()


def payload(run_s=1.0, speedup=10.0, total_ops=500, identical=True,
            max_abs_diff=0.0):
    return {
        "variants": {"optimized": {"run_s": run_s}},
        "speedup": speedup,
        "max_abs_diff": max_abs_diff,
        "executors": {
            "threads": {
                "total_ops": total_ops,
                "bit_identical": identical,
            },
        },
        "identical": identical,
        "title": "synthetic",
        "cache": {"hits": 3, "misses": 1},
    }


def test_identical_payloads_pass():
    failures, checked = checker.compare_payloads(
        "BENCH_x", payload(), payload())
    assert failures == []
    assert checked > 0


def test_small_drift_within_tolerance_passes():
    failures, _ = checker.compare_payloads(
        "BENCH_x", payload(run_s=1.0, speedup=10.0),
        payload(run_s=1.25, speedup=8.0))
    assert failures == []


def test_runtime_regression_over_30_percent_fails():
    failures, _ = checker.compare_payloads(
        "BENCH_x", payload(run_s=1.0), payload(run_s=1.4))
    assert any("regressed" in failure for failure in failures)


def test_microsecond_timings_are_treated_as_jitter():
    """Run times where both sides sit under the noise floor cannot
    regress — timer jitter dominates at that scale."""
    failures, _ = checker.compare_payloads(
        "BENCH_x", payload(run_s=5e-6), payload(run_s=9e-6))
    assert failures == []


def test_speedups_from_subfloor_timings_are_jitter():
    """A speedup computed from microsecond run times is a ratio of
    noise; it must not gate."""
    base = payload(run_s=6e-6, speedup=1.2)
    fresh = payload(run_s=8e-6, speedup=0.7)
    failures, _ = checker.compare_payloads("BENCH_x", base, fresh)
    assert failures == []


def test_speedups_from_measurable_timings_still_gate():
    base = payload(run_s=0.5, speedup=10.0)
    fresh = payload(run_s=0.5, speedup=2.0)
    failures, _ = checker.compare_payloads("BENCH_x", base, fresh)
    assert any("dropped" in failure for failure in failures)


def test_noise_floor_does_not_hide_real_blowups():
    failures, _ = checker.compare_payloads(
        "BENCH_x", payload(run_s=1e-4), payload(run_s=0.5))
    assert any("regressed" in failure for failure in failures)


def test_runtime_tolerance_is_configurable():
    failures, _ = checker.compare_payloads(
        "BENCH_x", payload(run_s=1.0), payload(run_s=1.4),
        max_regression=0.50)
    assert failures == []


def test_speedup_drop_fails():
    failures, _ = checker.compare_payloads(
        "BENCH_x", payload(speedup=10.0), payload(speedup=6.0))
    assert any("dropped" in failure for failure in failures)


def test_op_count_growth_fails_and_shrink_passes():
    grew, _ = checker.compare_payloads(
        "BENCH_x", payload(total_ops=500), payload(total_ops=501))
    assert any("op count grew" in failure for failure in grew)
    shrank, _ = checker.compare_payloads(
        "BENCH_x", payload(total_ops=500), payload(total_ops=400))
    assert shrank == []


def test_determinism_flip_fails():
    failures, _ = checker.compare_payloads(
        "BENCH_x", payload(identical=True), payload(identical=False))
    assert any("flipped" in failure for failure in failures)


def test_output_deviation_growth_fails():
    failures, _ = checker.compare_payloads(
        "BENCH_x", payload(max_abs_diff=0.0),
        payload(max_abs_diff=1e-3))
    assert any("deviation" in failure for failure in failures)


def test_missing_fresh_metric_fails():
    fresh = payload()
    del fresh["speedup"]
    failures, _ = checker.compare_payloads("BENCH_x", payload(), fresh)
    assert any("missing" in failure for failure in failures)


def test_noisy_metrics_are_ignored():
    base = payload()
    fresh = payload()
    fresh["cache"] = {"hits": 0, "misses": 99}
    fresh["variants"]["optimized"]["compile_s"] = 1e9
    failures, _ = checker.compare_payloads("BENCH_x", base, fresh)
    assert failures == []


def test_gate_miss_fails_and_gate_pass_passes():
    c_row = {"backends": {"c": {"speedup": 2.0}}}
    fresh = {"dense_dot": {"speedup": 4.0}, "list_x_band_dot": c_row}
    failures = checker.check_gates("BENCH_fig1_dot", fresh)
    assert any("gate miss" in failure for failure in failures)
    fresh = {"dense_dot": {"speedup": 400.0}, "list_x_band_dot": c_row}
    assert checker.check_gates("BENCH_fig1_dot", fresh) == []
    # The C-backend floor is a gate of its own: a silent fallback
    # (row absent) or a slow .so must fail, not pass by omission.
    assert any("missing" in failure for failure in checker.check_gates(
        "BENCH_fig1_dot", {"dense_dot": {"speedup": 400.0}}))
    slow = {"dense_dot": {"speedup": 400.0},
            "list_x_band_dot": {"backends": {"c": {"speedup": 1.2}}}}
    assert any("gate miss" in failure
               for failure in checker.check_gates("BENCH_fig1_dot",
                                                  slow))


def test_scaling_gate_skipped_on_small_worker_pools():
    for workers in (1, 2):
        small = {"executors": {"threads": {"speedup_vs_serial": 0.9,
                                           "max_workers": workers}}}
        assert checker.check_gates("BENCH_fig1_dot_throughput",
                                   small) == []
    multi = {"executors": {"threads": {"speedup_vs_serial": 0.9,
                                       "max_workers": 4}}}
    failures = checker.check_gates("BENCH_fig1_dot_throughput", multi)
    assert any("gate miss" in failure for failure in failures)
    fast = {"executors": {"threads": {"speedup_vs_serial": 3.1,
                                      "max_workers": 4}}}
    assert checker.check_gates("BENCH_fig1_dot_throughput", fast) == []


def test_efficiency_gate_is_nproc_aware():
    """The processes scaling-efficiency floor only applies on 4+
    worker runners; below that it self-skips."""
    for workers in (1, 2, 3):
        small = {"executors": {"processes": {"efficiency": 0.1,
                                             "max_workers": workers}}}
        assert checker.check_gates("BENCH_fig1_dot_throughput",
                                   small) == []
    slow = {"executors": {"processes": {"efficiency": 0.2,
                                        "max_workers": 4}}}
    failures = checker.check_gates("BENCH_fig1_dot_throughput", slow)
    assert any("gate miss" in failure for failure in failures)
    scaled = {"executors": {"processes": {"efficiency": 0.85,
                                          "max_workers": 4}}}
    assert checker.check_gates("BENCH_fig1_dot_throughput",
                               scaled) == []


def test_overhead_stage_leaves_are_runtime_gated():
    """Per-stage batch overheads regress like any run-time metric."""
    base = {"executors": {"processes": {"overhead": {
        "serialize_s": 0.1, "transport_s": 0.1,
        "execute_s": 1.0, "collect_s": 0.1}}}}
    fresh = {"executors": {"processes": {"overhead": {
        "serialize_s": 0.1, "transport_s": 0.5,
        "execute_s": 1.0, "collect_s": 0.1}}}}
    failures, checked = checker.compare_payloads("BENCH_x", base, fresh)
    assert checked >= 4
    assert any("transport_s" in failure and "regressed" in failure
               for failure in failures)


def test_efficiency_only_compared_at_equal_worker_counts():
    """A 1-core baseline must not gate a 4-core runner's efficiency
    (and vice versa) — only the absolute floors apply there."""
    base = {"executors": {"processes": {
        "efficiency": 0.95, "max_workers": 1, "wall_seconds": 1.0}}}
    fresh = {"executors": {"processes": {
        "efficiency": 0.72, "max_workers": 4, "wall_seconds": 0.35}}}
    failures, _ = checker.compare_payloads("BENCH_x", base, fresh)
    assert failures == []
    same = {"executors": {"processes": {
        "efficiency": 0.40, "max_workers": 1, "wall_seconds": 2.4}}}
    failures, _ = checker.compare_payloads("BENCH_x", base, same)
    assert any("efficiency" in failure and "dropped" in failure
               for failure in failures)


def test_end_to_end_main_detects_regression(tmp_path, capsys):
    baselines = tmp_path / "baselines"
    reports = tmp_path / "reports"
    baselines.mkdir()
    reports.mkdir()
    (baselines / "BENCH_a.json").write_text(json.dumps(payload()))
    (reports / "BENCH_a.json").write_text(
        json.dumps(payload(run_s=5.0)))
    code = checker.main(["--baselines", str(baselines),
                         "--reports", str(reports)])
    assert code == 1
    out = capsys.readouterr().out
    assert "regressed" in out

    (reports / "BENCH_a.json").write_text(json.dumps(payload()))
    assert checker.main(["--baselines", str(baselines),
                         "--reports", str(reports)]) == 0


def test_main_fails_when_benchmark_stops_running(tmp_path):
    baselines = tmp_path / "baselines"
    reports = tmp_path / "reports"
    baselines.mkdir()
    reports.mkdir()
    (baselines / "BENCH_gone.json").write_text(json.dumps(payload()))
    assert checker.main(["--baselines", str(baselines),
                         "--reports", str(reports)]) == 1


def test_refresh_copies_reports(tmp_path):
    baselines = tmp_path / "baselines"
    reports = tmp_path / "reports"
    reports.mkdir()
    (reports / "BENCH_a.json").write_text(json.dumps(payload()))
    assert checker.main(["--baselines", str(baselines),
                         "--reports", str(reports), "--refresh"]) == 0
    data = json.loads((baselines / "BENCH_a.json").read_text())
    assert data["speedup"] == pytest.approx(10.0)
