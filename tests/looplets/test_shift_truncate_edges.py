"""Edge cases of the shift/truncate looplet combinators.

``offset`` lowers through :func:`repro.looplets.shift.shift_looplet`
and ``window`` through :func:`repro.looplets.truncate.truncate`; these
tests pin their boundary behavior — zero-length ranges, shifts past
either end of the data, and the nested shift-of-truncate composition —
against the reference interpreter on every format that stores the
data differently.
"""

import numpy as np
import pytest

import repro.lang as fl
from repro.baselines.reference import interpret
from repro.ir.nodes import Extent, Literal
from repro.looplets.core import Run, Spike, Switch
from repro.looplets.shift import shift_extent, shift_looplet
from repro.looplets.truncate import truncate

FORMATS = ["dense", "sparse", "band", "vbl", "rle", "bitmap", "ragged",
           "packbits"]

#: Structured data: leading/trailing zeros, runs, and a lone spike.
DATA = np.array([0.0, 3.0, 3.0, 0.0, 0.0, 2.0, 0.0, 0.0, 5.0])
N = len(DATA)


def _check(program, output):
    expected = np.asarray(interpret(program).result_for(output))
    fl.execute(program, cache=False)
    got = np.asarray(output.to_numpy())
    np.testing.assert_array_equal(got, expected)
    return got


class TestZeroLengthRanges:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("k", [0, 4, N])
    def test_empty_window_touches_nothing(self, fmt, k):
        A = fl.from_numpy(DATA, (fmt,), name="A")
        S = fl.Scalar(name="S")
        i = fl.indices("i")
        program = fl.forall(i, fl.increment(
            S[()], fl.access(A, fl.window(i, k, k))), ext=(0, 0))
        got = _check(program, S)
        assert got == 0.0

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_empty_explicit_extent(self, fmt):
        A = fl.from_numpy(DATA, (fmt,), name="A")
        out = fl.zeros(N, name="out")
        i = fl.indices("i")
        program = fl.forall(i, fl.store(out[i], A[i]), ext=(3, 3))
        got = _check(program, out)
        np.testing.assert_array_equal(got, np.zeros(N))


class TestShiftsPastEitherEnd:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("delta", [N, N + 3, -N, -N - 3])
    def test_offset_past_the_data_yields_all_fill(self, fmt, delta):
        A = fl.from_numpy(DATA, (fmt,), name="A")
        out = fl.zeros(N, name="out")
        i = fl.indices("i")
        program = fl.forall(i, fl.store(out[i], fl.coalesce(
            fl.access(A, fl.permit(fl.offset(i, delta))), 0.0)))
        got = _check(program, out)
        np.testing.assert_array_equal(got, np.zeros(N))

    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("delta", [N - 1, 1 - N])
    def test_offset_to_the_last_overlap_element(self, fmt, delta):
        A = fl.from_numpy(DATA, (fmt,), name="A")
        out = fl.zeros(N, name="out")
        i = fl.indices("i")
        program = fl.forall(i, fl.store(out[i], fl.coalesce(
            fl.access(A, fl.permit(fl.offset(i, delta))), 0.0)))
        got = _check(program, out)
        # Exactly one element survives the shift.
        expected = np.zeros(N)
        if delta > 0:
            expected[delta:] = DATA[:N - delta]
        else:
            expected[:N + delta] = DATA[-delta:]
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_exact_extent_offset_without_permit(self, fmt):
        delta = 4
        A = fl.from_numpy(DATA, (fmt,), name="A")
        S = fl.Scalar(name="S")
        i = fl.indices("i")
        program = fl.forall(i, fl.increment(
            S[()], fl.access(A, fl.offset(i, delta))),
            ext=(delta, N))
        got = _check(program, S)
        assert float(got) == float(DATA[:N - delta].sum())


class TestNestedShiftOfTruncate:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("lo,hi,delta", [
        (1, 6, 2), (1, 6, -2), (0, N, 3), (2, 2, 1), (5, 9, 0),
    ])
    def test_offset_of_window_matches_interpreter(self, fmt, lo, hi,
                                                  delta):
        """offset(window(i, lo, hi), d): a truncation whose looplet is
        then shifted — both combinators compose on one access."""
        A = fl.from_numpy(DATA, (fmt,), name="A")
        S = fl.Scalar(name="S")
        i = fl.indices("i")
        ext_lo = max(0, delta - lo)
        ext_hi = max(ext_lo, min(hi - lo, N + delta - lo))
        program = fl.forall(i, fl.increment(
            S[()], fl.access(A, fl.offset(fl.window(i, lo, hi),
                                          delta))),
            ext=(ext_lo, ext_hi))
        got = _check(program, S)
        # The window clips to [lo, hi); the offset shifts reads by
        # -delta, so the loop visits window positions [ext_lo, ext_hi)
        # reading coordinates lo + i - delta.
        coords = [lo + k - delta for k in range(ext_lo, ext_hi)]
        assert float(got) == float(sum(DATA[c] for c in coords))

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_window_of_full_width_is_identity(self, fmt):
        A = fl.from_numpy(DATA, (fmt,), name="A")
        out = fl.zeros(N, name="out")
        i = fl.indices("i")
        program = fl.forall(i, fl.store(out[i], fl.access(
            A, fl.window(i, 0, N))), ext=(0, N))
        got = _check(program, out)
        np.testing.assert_array_equal(got, DATA)


class TestCombinatorUnits:
    """Direct unit behavior of the combinator functions."""

    def test_shift_by_zero_is_identity(self):
        run = Run(Literal(1.0))
        assert shift_looplet(run, 0) is run
        spike = Spike(Literal(0.0), Literal(2.0))
        assert shift_looplet(spike, 0) is spike

    def test_shift_extent_translates_into_child_coordinates(self):
        ext = shift_extent(Extent(Literal(3), Literal(7)), Literal(2))
        from repro.rewrite import simplify_expr

        assert simplify_expr(ext.start) == Literal(1)
        assert simplify_expr(ext.stop) == Literal(5)

    def test_truncate_excluding_tail_turns_spike_into_run(self):
        spike = Spike(Literal(0.0), Literal(9.0))
        result = truncate(spike, Extent(Literal(0), Literal(3)),
                          Extent(Literal(0), Literal(5)))
        assert isinstance(result, Run)
        assert result.body == Literal(0.0)

    def test_truncate_keeping_tail_preserves_spike(self):
        spike = Spike(Literal(0.0), Literal(9.0))
        result = truncate(spike, Extent(Literal(2), Literal(5)),
                          Extent(Literal(0), Literal(5)))
        assert result is spike

    def test_runtime_tail_decision_becomes_a_switch(self):
        from repro.ir.nodes import Var

        spike = Spike(Literal(0.0), Literal(9.0))
        result = truncate(spike, Extent(Literal(0), Var("t")),
                          Extent(Literal(0), Literal(5)))
        assert isinstance(result, Switch)
        assert len(result.cases) == 2
        assert isinstance(result.cases[1].body, Run)

    def test_truncated_run_stays_a_run(self):
        run = Run(Literal(4.0))
        result = truncate(run, Extent(Literal(0), Literal(2)),
                          Extent(Literal(0), Literal(6)))
        assert result is run
