"""Unit tests for looplet nodes, styles, shifting, and truncation."""

import pytest

from repro.ir import Extent, Literal, Var, build
from repro.looplets import (
    Case,
    Jumper,
    Lookup,
    Phase,
    Pipeline,
    Run,
    Spike,
    Stepper,
    Style,
    Switch,
    resolve_style,
    shift_looplet,
    style_of,
    truncate,
)
from repro.util.errors import LoweringError


class TestStyles:
    def test_priority_order_matches_paper(self):
        # Switch > Run > Spike > Pipeline > Jumper > Stepper > Lookup
        order = [Style.SWITCH, Style.RUN, Style.SPIKE, Style.PIPELINE,
                 Style.JUMPER, Style.STEPPER, Style.LOOKUP, Style.SCALAR]
        assert order == sorted(order, reverse=True)

    def test_scalar_payload_has_bottom_style(self):
        assert style_of(Literal(3)) == Style.SCALAR

    def test_resolve_picks_highest(self):
        values = [Run(Literal(0)),
                  Stepper(stride=Var("s"), body=Run(Literal(1))),
                  Literal(2)]
        assert resolve_style(values) == Style.RUN

    def test_resolve_empty_is_scalar(self):
        assert resolve_style([]) == Style.SCALAR

    def test_jumper_beats_stepper(self):
        values = [Jumper(stride=Var("a"), body=Run(Literal(0))),
                  Stepper(stride=Var("b"), body=Run(Literal(0)))]
        assert resolve_style(values) == Style.JUMPER


class TestConstruction:
    def test_lookup_requires_callable(self):
        with pytest.raises(LoweringError):
            Lookup(42)

    def test_switch_requires_cases(self):
        with pytest.raises(LoweringError):
            Switch([])

    def test_pipeline_interior_phase_needs_stride(self):
        with pytest.raises(LoweringError):
            Pipeline([Phase(Run(Literal(0))), Phase(Run(Literal(1)))])

    def test_pipeline_final_phase_open(self):
        pipe = Pipeline([Phase(Run(Literal(0)), stride=Var("s")),
                         Phase(Run(Literal(1)))])
        assert pipe.phases[0].stride == Var("s")
        assert pipe.phases[1].stride is None


class TestTruncate:
    def test_run_self_similar(self):
        run = Run(Var("x"))
        out = truncate(run, Extent(0, 3), Extent(0, 10))
        assert out is run

    def test_spike_with_tail_kept_statically(self):
        spike = Spike(Literal(0), Var("tail"))
        ext = Extent(Var("a"), Var("b"))
        assert truncate(spike, ext, ext) is spike

    def test_spike_truncated_to_interior_becomes_run(self):
        spike = Spike(Literal(0), Var("tail"))
        out = truncate(spike, Extent(0, 5), Extent(0, 9))
        assert isinstance(out, Run)
        assert out.body == Literal(0)

    def test_spike_with_runtime_boundary_becomes_switch(self):
        spike = Spike(Literal(0), Var("tail"))
        out = truncate(spike, Extent(Var("s"), Var("p")),
                       Extent(Var("s"), Var("q")))
        assert isinstance(out, Switch)
        kept, dropped = out.cases
        assert kept.cond == build.eq(Var("p"), Var("q"))
        assert isinstance(kept.body, Spike)
        assert isinstance(dropped.body, Run)

    def test_switch_truncates_through_cases(self):
        switch = Switch([Case(Var("c"), Spike(Literal(0), Var("t")))])
        out = truncate(switch, Extent(0, 4), Extent(0, 9))
        assert isinstance(out.cases[0].body, Run)

    def test_stepper_passes_through(self):
        stepper = Stepper(stride=Var("s"), body=Run(Literal(0)))
        assert truncate(stepper, Extent(0, 3), Extent(0, 9)) is stepper

    def test_payload_passes_through(self):
        assert truncate(Var("x"), Extent(0, 1), Extent(0, 2)) == Var("x")


class TestShift:
    def test_zero_shift_is_identity(self):
        run = Run(Var("x"))
        assert shift_looplet(run, 0) is run

    def test_run_position_independent(self):
        run = Run(Var("x"))
        assert shift_looplet(run, Var("d")) is run

    def test_lookup_translates_index(self):
        lookup = Lookup(lambda j: build.plus(j, 100))
        shifted = shift_looplet(lookup, Literal(10))
        # Element at absolute index 15 is the child's element 5.
        assert shifted.body(Literal(15)) == Literal(105)

    def test_pipeline_strides_translate(self):
        pipe = Pipeline([Phase(Run(Literal(0)), stride=Literal(4)),
                         Phase(Run(Literal(1)))])
        shifted = shift_looplet(pipe, Literal(3))
        assert shifted.phases[0].stride == Literal(7)
        assert shifted.phases[1].stride is None

    def test_stepper_stride_and_seek_translate(self):
        seen = {}

        def seek(ctx, start):
            seen["start"] = start
            return []

        stepper = Stepper(stride=Var("s"), body=Run(Literal(0)), seek=seek)
        shifted = shift_looplet(stepper, Literal(5))
        assert shifted.stride == build.plus(Var("s"), 5)
        shifted.seek(None, Literal(12))
        assert seen["start"] == Literal(7)

    def test_switch_shifts_bodies_not_conditions(self):
        lookup = Lookup(lambda j: j)
        switch = Switch([Case(Var("c"), lookup)])
        shifted = shift_looplet(switch, Literal(2))
        assert shifted.cases[0].cond == Var("c")
        assert shifted.cases[0].body.body(Literal(9)) == Literal(7)

    def test_nested_shift_composes(self):
        lookup = Lookup(lambda j: j)
        shifted = shift_looplet(shift_looplet(lookup, Literal(2)), Literal(3))
        assert shifted.body(Literal(10)) == Literal(5)


class TestSimplifyLooplet:
    def test_style_outranks_everything(self):
        from repro.looplets import Simplify

        assert Simplify(Run(Literal(0.0))).style() == Style.SIMPLIFY
        assert Style.SIMPLIFY > Style.SWITCH

    def test_shift_passes_through(self):
        from repro.looplets import Simplify

        lookup = Lookup(lambda j: j)
        shifted = shift_looplet(Simplify(lookup), Literal(3))
        assert isinstance(shifted, Simplify)
        assert shifted.body.body(Literal(10)) == Literal(7)

    def test_truncate_passes_through(self):
        from repro.looplets import Simplify

        spike = Spike(Literal(0), Var("t"))
        out = truncate(Simplify(spike), Extent(0, 4), Extent(0, 9))
        assert isinstance(out, Simplify)
        assert isinstance(out.body, Run)

    def test_compiles_transparently(self):
        import repro.lang as fl
        from repro.formats.custom import LoopletTensor
        from repro.looplets import Simplify

        A = LoopletTensor(6, lambda ctx, pos: Simplify(Run(Literal(3.0))),
                          name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i])))
        assert C.value == 18.0
