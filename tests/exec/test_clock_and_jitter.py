"""Regression tests for two latent execution-plane bugs: the watchdog
must run on CLOCK_MONOTONIC (a wall-clock step must never frame a
healthy worker as stalled), and retry-backoff jitter must draw from a
module-private RNG (a retry must never perturb the globally seeded
``random`` stream that fuzz/chaos campaigns reproduce from).
"""

import random
import time

import numpy as np

import repro.lang as fl
from repro.cin.analyze import program_tensors
from repro.exec import KernelPool, WorkerPool
from repro.exec import pool as pool_mod

N = 120


def make_pair(seed):
    rng = np.random.default_rng(seed)
    a = np.zeros(N)
    support = rng.choice(N, 12, replace=False)
    a[support] = rng.random(12) + 0.1
    b = np.zeros(N)
    lo = int(rng.integers(0, N - 30))
    b[lo:lo + 20] = rng.random(20) + 0.1
    a[lo] = 1.0
    return a, b


def dot_program(a, b):
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i]))


def dot_datasets(count, start_seed=1):
    return [program_tensors(dot_program(*make_pair(seed)))
            for seed in range(start_seed, start_seed + count)]


def expected_dots(count, start_seed=1):
    return [float(np.dot(*make_pair(seed)))
            for seed in range(start_seed, start_seed + count)]


def outputs_of(result):
    return [float(item.outputs[0]) for item in result]


def dot_kernel():
    return fl.compile_kernel(dot_program(*make_pair(0)))


def test_watchdog_survives_wall_clock_step(monkeypatch):
    """A wall-clock step while chunks are in flight (NTP sync, manual
    clock set) must not trip the watchdog.

    The regression: dispatch stamps and the staleness comparison once
    used ``time.time()``, so a forward step between dispatch and the
    watchdog check inflated ``now - dispatched`` past any deadline and
    killed every in-flight worker as "stalled".  Both sides now run on
    ``time.monotonic()`` (CLOCK_MONOTONIC is system-wide on Linux), so
    the parent's wall clock stepping two hours forward mid-flight must
    be invisible.
    """
    kernel = dot_kernel()
    with WorkerPool(max_workers=2) as workers:
        # Spawn (and warm) the fleet before skewing the parent clock,
        # so fork-inherited state is untouched: the skew is strictly
        # parent-side, like a real NTP step racing a dispatch.
        with KernelPool(kernel, executor="processes",
                        worker_pool=workers, deadline_s=5.0) as pool:
            pool.map(dot_datasets(2))

            real_time = time.time
            start = real_time()

            def stepped():
                # Two hours ahead once the batch is in flight; honest
                # for the first 200ms so dispatch stamps look "old"
                # relative to every later wall-clock reading.
                ahead = 7200.0 if real_time() - start > 0.2 else 0.0
                return real_time() + ahead

            monkeypatch.setattr(time, "time", stepped)
            with fl.chaos("worker_stall", index=1, stall_s=0.6):
                result = pool.map(dot_datasets(6))

        assert outputs_of(result) == expected_dots(6)
        assert result.faults["stalls"] == 0
        assert workers.stats()["stalls"] == 0


def test_retry_jitter_spares_the_global_random_stream():
    """Backoff jitter must come from the pool's private RNG.

    The regression: jitter drew from the global ``random`` module, so
    whether a retry happened (a nondeterministic infrastructure event)
    changed every later ``random.random()`` value — a seeded fuzz or
    chaos campaign interleaved with batch retries stopped being
    reproducible.  With the module-private ``_JITTER_RNG``, a
    chaos-injected crash plus retry must leave the globally seeded
    stream exactly where an undisturbed process would have it.
    """
    kernel = dot_kernel()
    random.seed(20260808)
    undisturbed = random.Random(20260808)

    with WorkerPool(max_workers=2) as workers:
        with KernelPool(kernel, executor="processes",
                        worker_pool=workers, max_retries=3) as pool:
            with fl.chaos("worker_crash", nth=1):
                result = pool.map(dot_datasets(6))

    # The fault fired and was retried — otherwise the test proves
    # nothing about the jitter path.
    assert result.faults["crashes"] >= 1
    assert result.faults["retries"] >= 1
    assert result.faults["backoff_s"] > 0
    assert outputs_of(result) == expected_dots(6)
    # The global stream is untouched: its next draws match a Random
    # seeded identically that nobody consumed from.
    assert [random.random() for _ in range(4)] \
        == [undisturbed.random() for _ in range(4)]


def test_jitter_rng_is_private_and_seed_independent():
    """The jitter RNG is not the global instance, and seeding the
    global module does not make fleet-wide jitter deterministic."""
    assert pool_mod._JITTER_RNG is not random
    assert not isinstance(random, type(pool_mod._JITTER_RNG))
    random.seed(7)
    a = pool_mod._JITTER_RNG.random()
    random.seed(7)
    b = pool_mod._JITTER_RNG.random()
    # Astronomically unlikely to collide if the private RNG ignores
    # the global seed; equal exactly when the bug regresses.
    assert a != b
