"""Error-message fidelity: failures name what actually failed.

``BatchExecutionError`` and ``SpecError`` are the errors operators see
from production batch services, so their rendered text must carry the
dataset's tensor names, the kernel, and the structural-key digest —
not just an index into a batch that is long gone.
"""

import pickle

import numpy as np
import pytest

import repro.lang as fl
from repro.cin.analyze import structural_digest, structural_key
from repro.util.errors import BatchExecutionError, SpecError


def _dot_program():
    a = np.array([1.0, 0.0, 2.0, 0.0])
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(a + 1, ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i])), (A, B, C)


class TestStructuralDigest:
    def test_stable_and_short(self):
        program, _ = _dot_program()
        key = structural_key(program)
        digest = structural_digest(key)
        assert digest == structural_digest(key)
        assert len(digest) == 12
        assert all(c in "0123456789abcdef" for c in digest)

    def test_none_renders_as_question_mark(self):
        assert structural_digest(None) == "?"


class TestBatchExecutionErrorText:
    def test_carries_names_kernel_and_digest(self):
        program, _ = _dot_program()
        key = structural_key(program)
        err = BatchExecutionError(
            2, ZeroDivisionError("division by zero"),
            dataset_names=("A", "B", "C"), kernel_name="kernel",
            structural_key=key)
        text = str(err)
        assert "dataset 2 (A, B, C) failed" in text
        assert "in kernel 'kernel'" in text
        assert "[skey %s]" % structural_digest(key) in text
        assert "ZeroDivisionError: division by zero" in text

    def test_minimal_form_still_reads(self):
        err = BatchExecutionError(0, ValueError("boom"))
        assert str(err) == "dataset 0 failed: ValueError: boom"

    def test_pickle_round_trip_keeps_every_field(self):
        program, _ = _dot_program()
        key = structural_key(program)
        err = BatchExecutionError(
            1, ValueError("boom"), dataset_names=("A",),
            kernel_name="kernel", structural_key=key)
        clone = pickle.loads(pickle.dumps(err))
        assert clone.index == 1
        assert clone.dataset_names == ("A",)
        assert clone.kernel_name == "kernel"
        assert clone.structural_key == key
        assert str(clone) == str(err)

    def test_batch_engine_renders_the_enriched_text(self):
        """A worker crash surfaces with names and digest attached."""
        program, _ = _dot_program()
        kernel = fl.compile_kernel(program, cache=False)
        # A genuine runtime failure: freeze the output buffer so the
        # kernel's write-back raises mid-run.
        output = kernel.outputs[0]
        output.element.val.setflags(write=False)
        try:
            with fl.KernelPool(kernel, executor="serial") as pool:
                with pytest.raises(BatchExecutionError) as excinfo:
                    pool.map([list(kernel.tensors)])
        finally:
            output.element.val.setflags(write=True)
        text = str(excinfo.value)
        assert "dataset 0 (" in text
        assert "A" in text and "C" in text
        assert "in kernel 'kernel'" in text
        assert "[skey " in text


class TestSpecErrorText:
    def test_identity_pinned_kernel_names_its_slots(self):
        from repro.modifiers import one_hot

        A = fl.from_numpy(np.arange(4.0), ("dense",), name="A")
        out = fl.zeros(4, name="out")
        mask = one_hot(4, 2, name="mask")
        i = fl.indices("i")
        program = fl.forall(i, fl.sieve(mask[i], fl.store(out[i],
                                                          A[i])))
        kernel = fl.compile_kernel(program, cache=False)
        with pytest.raises(SpecError) as excinfo:
            kernel.to_spec()
        text = str(excinfo.value)
        assert "mask" in text
        assert "skey " in text

    def test_bad_version_message_mentions_version(self):
        from repro.compiler.kernel import SPEC_VERSION, CompiledKernel

        program, _ = _dot_program()
        spec = fl.compile_kernel(program, cache=False).to_spec()
        spec["spec_version"] = SPEC_VERSION + 1
        with pytest.raises(SpecError, match="version"):
            CompiledKernel.from_spec(spec)

    def test_context_free_spec_error_is_untouched(self):
        assert str(SpecError("plain message")) == "plain message"

    def test_cache_hit_kernel_specs_name_their_own_tensors(self):
        """Tensor names are not part of the cache key, so a cache-hit
        kernel shares its artifact with a differently named program;
        the spec (and any SpecError) must still name *this* binding's
        tensors, not the compiling one's."""
        fl.kernel_cache().clear()

        def dot(names):
            a = np.array([1.0, 0.0, 2.0])
            A = fl.from_numpy(a, ("sparse",), name=names[0])
            B = fl.from_numpy(a + 1, ("dense",), name=names[1])
            C = fl.Scalar(name=names[2])
            i = fl.indices("i")
            return fl.compile_kernel(
                fl.forall(i, fl.increment(C[()], A[i] * B[i])))

        first = dot(("A", "B", "C"))
        second = dot(("X", "Y", "Z"))
        assert not first.from_cache and second.from_cache
        # Slot order is first-use: the output scalar leads.
        assert second.to_spec()["slot_names"] == ["Z", "X", "Y"]
        assert first.to_spec()["slot_names"] == ["C", "A", "B"]
