"""Warm worker-pool lifecycle: reuse, shutdown, start methods, crashes.

The pool's contract is *persistence*: workers outlive individual
``run_batch``/``KernelPool.map`` calls, kernel specs ship to each
worker at most once per pool lifetime, and a worker death is both
attributed (which dataset was in flight) and healed (the slot is
respawned so the next batch succeeds).
"""

import multiprocessing as mp

import numpy as np
import pytest

import repro.lang as fl
from repro.cin.analyze import program_tensors
from repro.exec import (KernelPool, WorkerPool, configure_pool,
                        default_pool, run_batch)
from repro.exec.pool import START_METHODS
from repro.util.errors import BatchExecutionError, WorkerCrashError

N = 120


def make_pair(seed):
    rng = np.random.default_rng(seed)
    a = np.zeros(N)
    support = rng.choice(N, 12, replace=False)
    a[support] = rng.random(12) + 0.1
    b = np.zeros(N)
    lo = int(rng.integers(0, N - 30))
    b[lo:lo + 20] = rng.random(20) + 0.1
    a[lo] = 1.0
    return a, b


def dot_program(a, b):
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i]))


def dot_datasets(count, start_seed=1):
    return [program_tensors(dot_program(*make_pair(seed)))
            for seed in range(start_seed, start_seed + count)]


def expected_dots(count, start_seed=1):
    return [float(np.dot(*make_pair(seed)))
            for seed in range(start_seed, start_seed + count)]


def outputs_of(result):
    return [float(item.outputs[0]) for item in result]


def test_default_pool_is_warm_across_run_batch_calls():
    """Two run_batch calls share the module-level pool: same object,
    no extra worker spawns for the second batch."""
    template = dot_program(*make_pair(0))
    pool = default_pool()
    run_batch(template, dot_datasets(3), executor="processes")
    mid = default_pool().stats()
    result = run_batch(template, dot_datasets(3, start_seed=4),
                       executor="processes")
    after = default_pool().stats()
    assert default_pool() is pool
    assert after["workers_spawned"] == mid["workers_spawned"]
    assert after["batches"] == mid["batches"] + 1
    assert outputs_of(result) == pytest.approx(
        expected_dots(3, start_seed=4))


def test_configure_pool_replaces_and_closes_default():
    old = default_pool()
    try:
        new = configure_pool(max_workers=1)
        assert default_pool() is new
        assert new is not old
        assert old.closed
        assert new.max_workers == 1
        template = dot_program(*make_pair(0))
        result = run_batch(template, dot_datasets(2),
                           executor="processes")
        assert outputs_of(result) == pytest.approx(expected_dots(2))
    finally:
        configure_pool()  # restore a machine-sized default


def test_worker_pool_close_is_idempotent():
    template = dot_program(*make_pair(0))
    kernel = fl.compile_kernel(template)
    workers = WorkerPool(max_workers=1)
    pool = KernelPool(kernel, executor="processes",
                      worker_pool=workers)
    pool.map(dot_datasets(2))
    workers.close()
    workers.close()  # second close is a no-op
    assert workers.closed
    with pytest.raises(RuntimeError, match="closed"):
        pool.map(dot_datasets(2))
    pool.close()


def test_explicit_pool_survives_kernel_pool_and_ships_specs_once():
    """An explicitly provided WorkerPool is never closed by the
    KernelPool, and a kernel's spec crosses the pipe at most once per
    worker even across KernelPool instances."""
    template = dot_program(*make_pair(0))
    kernel = fl.compile_kernel(template)
    with WorkerPool(max_workers=2) as workers:
        for start_seed in (1, 4):
            with KernelPool(kernel, executor="processes",
                            worker_pool=workers) as pool:
                result = pool.map(dot_datasets(3,
                                               start_seed=start_seed))
            assert not workers.closed
            assert outputs_of(result) == pytest.approx(
                expected_dots(3, start_seed=start_seed))
        assert 1 <= workers.stats()["specs_shipped"] \
            <= workers.max_workers


@pytest.mark.parametrize("method", START_METHODS)
def test_start_method_matrix(method):
    """The pool produces identical results under every available
    multiprocessing start method."""
    if method not in mp.get_all_start_methods():
        pytest.skip("start method %r unavailable here" % method)
    template = dot_program(*make_pair(0))
    kernel = fl.compile_kernel(template)
    with WorkerPool(max_workers=2, start_method=method) as workers:
        assert workers.stats()["start_method"] == method
        with KernelPool(kernel, executor="processes",
                        worker_pool=workers) as pool:
            result = pool.map(dot_datasets(3))
    assert outputs_of(result) == pytest.approx(expected_dots(3))


def test_worker_crash_is_attributed_and_healed():
    """A worker dying mid-chunk surfaces as BatchExecutionError with
    the in-flight dataset index (cause: WorkerCrashError), the slot is
    respawned, and the next map on the same pool succeeds."""
    template = dot_program(*make_pair(0))
    kernel = fl.compile_kernel(template)
    with WorkerPool(max_workers=2) as workers:
        with KernelPool(kernel, executor="processes",
                        worker_pool=workers, max_retries=0) as pool:
            with fl.chaos("worker_crash", index=3, exit_code=17):
                with pytest.raises(BatchExecutionError) as info:
                    pool.map(dot_datasets(6))
            assert info.value.index == 3
            cause = info.value.__cause__
            assert isinstance(cause, WorkerCrashError)
            assert cause.exitcode == 17
            assert cause.index == 3
            # The fault is disarmed outside the chaos block; reuse
            # the *same* pool: the dead slot must have been respawned.
            result = pool.map(dot_datasets(6))
            assert outputs_of(result) == pytest.approx(
                expected_dots(6))
        stats = workers.stats()
        assert stats["respawns"] >= 1
        assert stats["crashes"] >= 1
        assert stats["alive"] == workers.max_workers
