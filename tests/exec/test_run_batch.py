"""Batch engine: executor equivalence, failure modes, degeneracies.

The acceptance property of the batch subsystem is *differential*: one
compiled kernel mapped over the same datasets must produce bit-identical
output snapshots and identical aggregate instrumented op counts under
the serial, threads, and processes executors — concurrency shards the
work, it never changes it.
"""

import numpy as np
import pytest

import repro.lang as fl
from repro.cin.analyze import program_tensors
from repro.exec import EXECUTORS, KernelPool, run_batch
from repro.util.errors import BatchExecutionError, BindingError, SpecError

N = 300


def make_pair(seed):
    """A sparse-list and a banded vector with guaranteed overlap."""
    rng = np.random.default_rng(seed)
    a = np.zeros(N)
    support = rng.choice(N, 30, replace=False)
    a[support] = rng.random(30) + 0.1
    b = np.zeros(N)
    lo = int(rng.integers(0, N - 50))
    b[lo:lo + 40] = rng.random(40) + 0.1
    a[lo] = 1.0  # at least one intersection point
    return a, b


def dot_program(a, b):
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i]))


def dot_datasets(count, start_seed=1):
    programs = [dot_program(*make_pair(seed))
                for seed in range(start_seed, start_seed + count)]
    return [program_tensors(program) for program in programs]


def named(tensors, name):
    """Position of the tensor called ``name`` in a slot list."""
    return next(slot for slot, tensor in enumerate(tensors)
                if tensor.name == name)


def spmv_program(mat, vec):
    A = fl.from_numpy(mat, ("dense", "sparse"), name="A")
    x = fl.from_numpy(vec, ("sparse",), name="x")
    y = fl.zeros(mat.shape[0], name="y")
    i, j = fl.indices("i", "j")
    return fl.forall(i, fl.forall(j, fl.increment(
        y[i], A[i, j] * x[j])))


def test_differential_across_executors():
    """>= 8 datasets: bit-identical outputs and identical aggregate op
    counts under serial, threads, and processes (the acceptance
    criterion of the batch engine)."""
    template = dot_program(*make_pair(0))
    datasets = dot_datasets(9)
    expected = [float(a @ b)
                for a, b in (make_pair(seed) for seed in range(1, 10))]
    results = {}
    for executor in EXECUTORS:
        results[executor] = run_batch(
            template, datasets, executor=executor, max_workers=3,
            instrument=True)
    serial = results["serial"]
    assert len(serial) == 9
    for item, value in zip(serial, expected):
        assert float(item.outputs[0]) == pytest.approx(value)
    for executor in ("threads", "processes"):
        other = results[executor]
        assert other.total_ops == serial.total_ops
        assert [item.ops for item in other] == \
            [item.ops for item in serial]
        for left, right in zip(serial, other):
            for base, out in zip(left.outputs, right.outputs):
                assert base.dtype == out.dtype
                assert base.shape == out.shape
                assert base.tobytes() == out.tobytes()
    assert serial.total_ops > 0


def test_multi_output_differential():
    """A 2-D kernel with a vector output stays deterministic under
    every executor."""
    rng = np.random.default_rng(3)

    def make_mat(seed):
        gen = np.random.default_rng(seed)
        mat = gen.random((12, 16))
        mat[mat < 0.6] = 0.0
        return mat

    vec = rng.random(16)
    vec[vec < 0.4] = 0.0
    template = spmv_program(make_mat(0), vec)
    datasets = [program_tensors(spmv_program(make_mat(seed), vec))
                for seed in range(1, 9)]
    reference = None
    for executor in EXECUTORS:
        result = run_batch(template, datasets, executor=executor,
                           max_workers=2, instrument=True)
        snap = (result.total_ops,
                [[out.tobytes() for out in item.outputs]
                 for item in result])
        if reference is None:
            reference = snap
        else:
            assert snap == reference
    for item, seed in zip(result, range(1, 9)):
        np.testing.assert_allclose(item.outputs[0],
                                   make_mat(seed) @ vec)


@pytest.mark.parametrize("executor", EXECUTORS)
def test_every_executor_mutates_datasets_in_place(executor):
    """All three executors write outputs into the caller's tensors:
    serial/threads run in-process, and the processes executor writes
    back through its shared-memory transport."""
    template = dot_program(*make_pair(0))
    datasets = dot_datasets(3)
    result = run_batch(template, datasets, executor=executor,
                       max_workers=2)
    for tensors, item in zip(datasets, result):
        scalar = tensors[named(tensors, "C")]
        assert scalar.value == pytest.approx(float(item.outputs[0]))


@pytest.mark.parametrize("executor", EXECUTORS)
def test_empty_batch_degenerates(executor):
    template = dot_program(*make_pair(0))
    result = run_batch(template, [], executor=executor,
                       instrument=True)
    assert len(result) == 0
    assert result.outputs == []
    assert result.total_ops == 0
    assert result.stats["runs"] == 0


@pytest.mark.parametrize("executor", EXECUTORS)
def test_single_dataset_degenerates(executor):
    template = dot_program(*make_pair(0))
    a, b = make_pair(42)
    [dataset] = [program_tensors(dot_program(a, b))]
    result = run_batch(template, [dataset], executor=executor,
                       instrument=True)
    assert len(result) == 1
    assert float(result[0].outputs[0]) == pytest.approx(float(a @ b))
    assert result.total_ops == result[0].ops
    assert result.stats["runs"] == 1


@pytest.mark.parametrize("executor", EXECUTORS)
def test_worker_error_carries_dataset_index(executor):
    """A dataset that raises inside the kernel surfaces as
    BatchExecutionError with the failing index attached."""
    rng = np.random.default_rng(7)

    def dense_dot_program(a, b):
        A = fl.from_numpy(a, ("dense",), name="A")
        B = fl.from_numpy(b, ("dense",), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        return fl.forall(i, fl.increment(C[()], A[i] * B[i]))

    template = dense_dot_program(rng.random(8), rng.random(8))
    datasets = []
    for position in range(5):
        tensors = program_tensors(
            dense_dot_program(rng.random(8), rng.random(8)))
        if position == 3:
            # Truncate the value buffer behind the format signature's
            # back: binding succeeds, the kernel's scalar loop then
            # indexes past the end and raises IndexError.
            broken = tensors[named(tensors, "A")]
            broken.element.val = broken.element.val[:4]
        datasets.append(tensors)
    with pytest.raises(BatchExecutionError) as info:
        # opt_level=1 keeps the loop scalar (a vectorized slice read
        # would silently clamp instead of raising).
        run_batch(template, datasets, executor=executor,
                  max_workers=2, opt_level=1)
    assert info.value.index == 3
    assert "IndexError" in str(info.value)


def test_signature_mismatch_rejected_up_front():
    """Datasets whose formats do not match the artifact fail fast,
    before any dataset is dispatched (nothing runs)."""
    template = dot_program(*make_pair(0))
    good = dot_datasets(2)
    a, b = make_pair(99)
    bad = program_tensors(dot_program(a, b))
    # The B slot expects the band format; hand it a sparse-list tensor.
    band_slot = named(bad, "B")
    bad[band_slot] = fl.from_numpy(b, ("sparse",), name="B")
    kernel = fl.compile_kernel(template)
    with KernelPool(kernel, executor="serial") as pool:
        with pytest.raises(
                BindingError,
                match="dataset 2: slot %d" % band_slot):
            pool.map(good + [bad])
        assert pool.stats()["runs"] == 0


def test_wrong_slot_count_rejected():
    template = dot_program(*make_pair(0))
    [dataset] = dot_datasets(1)
    with pytest.raises(BindingError, match="dataset 0"):
        run_batch(template, [dataset[:-1]])


def test_mapping_datasets_resolve_by_name():
    a0, b0 = make_pair(0)
    template = dot_program(a0, b0)
    outputs = []
    datasets = []
    values = []
    for seed in (5, 6, 7):
        a, b = make_pair(seed)
        A = fl.from_numpy(a, ("sparse",), name="A")
        B = fl.from_numpy(b, ("band",), name="B")
        C = fl.Scalar(name="C")
        datasets.append({"A": A, "B": B, "C": C})
        outputs.append(C)
        values.append(float(a @ b))
    result = run_batch(template, datasets, executor="serial")
    for item, value in zip(result, values):
        assert float(item.outputs[0]) == pytest.approx(value)
    with pytest.raises(BindingError, match="dataset 0"):
        run_batch(template, [{"nope": outputs[0]}])


def test_shared_output_tensor_rejected():
    """Mapping datasets that do not override the output would make
    every dataset write one buffer; the pool refuses."""
    a0, b0 = make_pair(0)
    template = dot_program(a0, b0)
    mappings = []
    for seed in (5, 6):
        a, b = make_pair(seed)
        mappings.append({
            "A": fl.from_numpy(a, ("sparse",), name="A"),
            "B": fl.from_numpy(b, ("band",), name="B"),
        })
    with pytest.raises(BindingError, match="share an output"):
        run_batch(template, mappings)


def test_input_aliasing_another_datasets_output_rejected():
    """Chained batching (dataset k+1 reading dataset k's output
    buffer) would race under the parallel executors; the pool rejects
    it up front."""
    mat = np.zeros((4, 4))
    mat[0, 1] = 1.0
    vec = np.arange(4, dtype=float)
    template = spmv_program(mat, vec)
    first = program_tensors(spmv_program(mat, vec))
    second = program_tensors(spmv_program(mat, vec))
    # Point dataset 1's input vector at dataset 0's output buffer.
    y_slot = named(first, "y")
    x_slot = named(second, "x")
    second[x_slot] = fl.from_numpy(np.zeros(4), ("sparse",), name="x")
    second[x_slot].element.val = first[y_slot].element.val
    with pytest.raises(BindingError, match="order-independent"):
        run_batch(template, [first, second])


def test_batch_execution_error_survives_pickling():
    import pickle

    error = BatchExecutionError(3, ValueError("boom"))
    clone = pickle.loads(pickle.dumps(error))
    assert clone.index == 3
    assert "ValueError" in str(clone)
    assert "boom" in str(clone)


def test_unknown_executor_rejected():
    template = dot_program(*make_pair(0))
    kernel = fl.compile_kernel(template)
    with pytest.raises(ValueError, match="unknown executor"):
        KernelPool(kernel, executor="fibers")


def test_pool_reuse_accumulates_stats():
    template = dot_program(*make_pair(0))
    kernel = fl.compile_kernel(template, instrument=True)
    with KernelPool(kernel, executor="threads", max_workers=2) as pool:
        first = pool.map(dot_datasets(4, start_seed=1))
        second = pool.map(dot_datasets(4, start_seed=5))
        stats = pool.stats()
    assert stats["runs"] == 8
    assert stats["ops"] == first.total_ops + second.total_ops
    assert sum(entry["runs"] for entry in stats["workers"].values()) == 8
    with pytest.raises(RuntimeError):
        pool.map(dot_datasets(1))


def test_process_workers_rebuild_spec_once():
    from repro.exec import WorkerPool

    template = dot_program(*make_pair(0))
    kernel = fl.compile_kernel(template, instrument=True)
    # A fresh explicit pool: the shared default pool's workers may
    # have rebuilt this very spec for an earlier test already.
    with WorkerPool(max_workers=2) as workers:
        with KernelPool(kernel, executor="processes",
                        worker_pool=workers) as pool:
            pool.map(dot_datasets(6, start_seed=1))
            pool.map(dot_datasets(6, start_seed=7))
            stats = pool.stats()
    assert stats["runs"] == 12
    # Each worker process re-execs the spec at most once, then serves
    # every later dataset from its artifact cache — and the spec
    # itself crossed the pipe at most once per worker (ship-once).
    assert 1 <= stats["spec_rebuilds"] <= pool.max_workers
    for entry in stats["workers"].values():
        assert entry["spec_rebuilds"] <= 1
    assert 1 <= stats["pool"]["specs_shipped"] <= pool.max_workers


def test_unserializable_kernel_rejected_for_processes():
    """Custom looplet tensors pin compile-time buffers; the processes
    executor must refuse them loudly (SpecError), not silently pickle
    stale state."""
    from repro.formats.custom import LoopletTensor
    from repro.looplets import Run
    from repro.ir import Literal

    A = LoopletTensor(8, lambda ctx, pos: Run(Literal(2.0)), name="A")
    b = np.ones(8)
    B = fl.from_numpy(b, ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    program = fl.forall(i, fl.increment(C[()], A[i] * B[i]))
    dataset = program_tensors(program)
    assert run_batch(program, [dataset],
                     executor="serial")[0].outputs[0] == 16.0
    with pytest.raises(SpecError):
        run_batch(program, [dataset], executor="processes")
