"""Fault tolerance under injected chaos: the kill matrix, the
watchdog, retry/backoff, failure policies, and interrupt hygiene.

Every fault here is injected through the chaos engine
(:mod:`repro.chaos`), so these tests double as its integration
coverage: the plan reaches long-lived workers through the per-chunk
environment handoff, fires at the real seams, and disarms cleanly
when the ``with fl.chaos(...)`` block exits.
"""

import multiprocessing as mp
import os
import time

import numpy as np
import pytest

import repro.lang as fl
from repro.cin.analyze import program_tensors
from repro.exec import KernelPool, WorkerPool
from repro.exec import pool as pool_mod
from repro.exec import shm as shm_mod
from repro.util.errors import (BatchExecutionError, ShmAttachError,
                               StoreIOError, TransientError,
                               WorkerCrashError, WorkerStallError,
                               is_transient)

N = 120


def make_pair(seed):
    rng = np.random.default_rng(seed)
    a = np.zeros(N)
    support = rng.choice(N, 12, replace=False)
    a[support] = rng.random(12) + 0.1
    b = np.zeros(N)
    lo = int(rng.integers(0, N - 30))
    b[lo:lo + 20] = rng.random(20) + 0.1
    a[lo] = 1.0
    return a, b


def dot_program(a, b):
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i]))


def dot_datasets(count, start_seed=1):
    return [program_tensors(dot_program(*make_pair(seed)))
            for seed in range(start_seed, start_seed + count)]


def expected_dots(count, start_seed=1):
    return [float(np.dot(*make_pair(seed)))
            for seed in range(start_seed, start_seed + count)]


def outputs_of(result):
    return [float(item.outputs[0]) for item in result]


def dot_kernel():
    return fl.compile_kernel(dot_program(*make_pair(0)))


def shm_entries():
    prefix = "%s_%d_" % (shm_mod.SHM_PREFIX, os.getpid())
    return {name for name in os.listdir("/dev/shm")
            if name.startswith(prefix)}


def test_transient_taxonomy():
    """The retry machinery keys off is_transient: infrastructure
    faults are transient, kernel/user exceptions are not."""
    assert is_transient(WorkerCrashError("pid-1", -9, 0))
    assert is_transient(WorkerStallError("pid-1", 0, 1.0))
    assert is_transient(ShmAttachError("gone"))
    assert is_transient(StoreIOError("disk"))
    assert not is_transient(ValueError("kernel bug"))
    assert not is_transient(KeyboardInterrupt())
    assert issubclass(WorkerStallError, TransientError)


# -- the kill matrix -------------------------------------------------------

KILL_MODES = [
    ("exit", {"mode": "exit", "exit_code": 23}, 23),
    ("sys_exit", {"mode": "sys_exit", "exit_code": 7}, 7),
    ("sigkill", {"mode": "sigkill"}, -9),
    ("sigterm", {"mode": "sigterm"}, -15),
]


@pytest.mark.parametrize("mode,rule,expected_code",
                         KILL_MODES, ids=[m[0] for m in KILL_MODES])
def test_kill_matrix_attributes_and_heals(mode, rule, expected_code):
    """However a worker dies mid-dataset — clean exit, SystemExit,
    SIGKILL, SIGTERM — the death is attributed to the in-flight
    dataset with the real exit code, and the same pool serves the
    next batch."""
    kernel = dot_kernel()
    with WorkerPool(max_workers=2) as workers:
        with KernelPool(kernel, executor="processes",
                        worker_pool=workers, max_retries=0) as pool:
            with fl.chaos("worker_crash", index=2, **rule):
                with pytest.raises(BatchExecutionError) as info:
                    pool.map(dot_datasets(6))
            assert info.value.index == 2
            cause = info.value.__cause__
            assert isinstance(cause, WorkerCrashError)
            assert cause.exitcode == expected_code
            assert cause.index == 2
            result = pool.map(dot_datasets(6))
            assert outputs_of(result) == pytest.approx(expected_dots(6))
        stats = workers.stats()
        assert stats["crashes"] >= 1
        assert stats["respawns"] >= 1
        assert stats["alive"] == workers.max_workers


def test_watchdog_kills_hung_worker_within_deadline():
    """A worker wedged for 60s is detected in ~the 1s deadline, killed,
    attributed as WorkerStallError, and its slot respawned."""
    kernel = dot_kernel()
    with WorkerPool(max_workers=2) as workers:
        with KernelPool(kernel, executor="processes",
                        worker_pool=workers, max_retries=0,
                        deadline_s=1.0) as pool:
            start = time.monotonic()
            with fl.chaos("worker_stall", index=1, stall_s=60):
                with pytest.raises(BatchExecutionError) as info:
                    pool.map(dot_datasets(4))
            elapsed = time.monotonic() - start
            assert elapsed < 20, "watchdog did not bound the stall"
            cause = info.value.__cause__
            assert isinstance(cause, WorkerStallError)
            assert cause.index == 1
            assert cause.deadline_s == pytest.approx(1.0)
            result = pool.map(dot_datasets(4))
            assert outputs_of(result) == pytest.approx(expected_dots(4))
        assert workers.stats()["stalls"] >= 1
        assert workers.stats()["alive"] == workers.max_workers


# -- retry / backoff -------------------------------------------------------

def test_one_crash_retries_to_success():
    """A single transient crash is absorbed by the retry budget: the
    batch succeeds bit-for-bit and the fault ledger shows the save."""
    kernel = dot_kernel()
    with WorkerPool(max_workers=2) as workers:
        with KernelPool(kernel, executor="processes",
                        worker_pool=workers, max_retries=2) as pool:
            with fl.chaos("worker_crash", nth=1):
                result = pool.map(dot_datasets(6))
            assert outputs_of(result) == pytest.approx(expected_dots(6))
            assert result.faults["crashes"] >= 1
            assert result.faults["retries"] >= 1
            assert not result.failures
            assert pool.stats()["faults"]["retries"] >= 1


def test_shm_attach_race_retries_to_success():
    """A chaos-injected ShmAttachError in a worker is transient: the
    dataset re-stages on retry and the batch still matches."""
    kernel = dot_kernel()
    with WorkerPool(max_workers=2) as workers:
        with KernelPool(kernel, executor="processes",
                        worker_pool=workers, max_retries=2) as pool:
            with fl.chaos("shm_attach_fail", nth=1):
                result = pool.map(dot_datasets(6))
            assert outputs_of(result) == pytest.approx(expected_dots(6))
            assert result.faults["transient_errors"] >= 1
            assert result.faults["retries"] >= 1


def test_retry_budget_exhausts_to_typed_error():
    """A fault that fires on every attempt burns the whole retry
    budget, then surfaces as the documented typed error."""
    kernel = dot_kernel()
    with WorkerPool(max_workers=2) as workers:
        with KernelPool(kernel, executor="processes",
                        worker_pool=workers, max_retries=1) as pool:
            with fl.chaos("worker_crash", index=2):
                with pytest.raises(BatchExecutionError) as info:
                    pool.map(dot_datasets(4))
            assert isinstance(info.value.__cause__, WorkerCrashError)
            assert pool.stats()["faults"]["retries"] >= 1


# -- failure policies ------------------------------------------------------

def test_degrade_recovers_poisoned_dataset():
    """on_failure='degrade': a dataset that always kills its process
    worker re-runs on a lower tier (where the fault point cannot
    reach) and the batch comes back complete."""
    kernel = dot_kernel()
    with WorkerPool(max_workers=2) as workers:
        with KernelPool(kernel, executor="processes",
                        worker_pool=workers, on_failure="degrade",
                        max_retries=0) as pool:
            with fl.chaos("worker_crash", index=3):
                result = pool.map(dot_datasets(6))
            assert outputs_of(result) == pytest.approx(expected_dots(6))
            assert not result.failures
            assert result.faults["degraded"] >= 1


def test_skip_isolates_poisoned_dataset():
    """on_failure='skip': the poisoned dataset lands in
    BatchResult.failures as a typed error; every survivor's output is
    untouched."""
    kernel = dot_kernel()
    with WorkerPool(max_workers=2) as workers:
        with KernelPool(kernel, executor="processes",
                        worker_pool=workers, on_failure="skip",
                        max_retries=0) as pool:
            with fl.chaos("worker_crash", index=3):
                result = pool.map(dot_datasets(6))
            assert set(result.failures) == {3}
            failure = result.failures[3]
            assert isinstance(failure, BatchExecutionError)
            assert isinstance(failure.__cause__, WorkerCrashError)
            assert [item.index for item in result] == [0, 1, 2, 4, 5]
            expected = expected_dots(6)
            for item in result:
                assert float(item.outputs[0]) == pytest.approx(
                    expected[item.index])


def test_run_batch_threads_policy_params():
    """The policy knobs ride through the one-call API on every
    executor, not just processes."""
    template = dot_program(*make_pair(0))
    result = fl.run_batch(template, dot_datasets(4),
                          executor="threads", max_workers=2,
                          on_failure="skip", max_retries=1)
    assert outputs_of(result) == pytest.approx(expected_dots(4))
    assert not result.failures


# -- interrupt hygiene -----------------------------------------------------

def test_keyboard_interrupt_leaves_no_orphans(monkeypatch):
    """Ctrl-C mid-batch must not orphan workers or leak segments: the
    in-flight workers are discarded, the pool heals lazily, and the
    next map on the same pool succeeds."""
    kernel = dot_kernel()
    children_before = {proc.pid for proc in mp.active_children()}
    with WorkerPool(max_workers=2) as workers:
        with KernelPool(kernel, executor="processes",
                        worker_pool=workers) as pool:
            result = pool.map(dot_datasets(4))
            assert outputs_of(result) == pytest.approx(expected_dots(4))
            baseline = shm_entries()
            real_wait = pool_mod.mp_connection.wait
            calls = {"n": 0}

            def interrupted_wait(*args, **kwargs):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise KeyboardInterrupt
                return real_wait(*args, **kwargs)

            monkeypatch.setattr(pool_mod.mp_connection, "wait",
                                interrupted_wait)
            with pytest.raises(KeyboardInterrupt):
                pool.map(dot_datasets(4, start_seed=9))
            assert shm_entries() <= baseline, "interrupt leaked shm"
            result = pool.map(dot_datasets(4, start_seed=9))
            assert outputs_of(result) == pytest.approx(
                expected_dots(4, start_seed=9))
    leaked = shm_entries()
    assert not leaked, "closed pool left segments: %s" % sorted(leaked)
    orphans = {proc.pid
               for proc in mp.active_children()} - children_before
    assert not orphans, "orphan workers: %s" % sorted(orphans)
