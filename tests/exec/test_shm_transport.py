"""Shared-memory data plane: segments, arena, staging, hygiene.

Two layers of guarantees.  In-process: segments round-trip views,
the arena makes arrays transport-resident, staging dedups per dataset
and writes outputs back, and ``run_chunk`` executes against rebuilt
descriptor args.  End-to-end: dataset payloads cross the process
boundary without pickling tensor data, and no ``/dev/shm`` segment
outlives its owner on success *or* error paths.
"""

import os

import numpy as np
import pytest

import repro.lang as fl
from repro.cin.analyze import program_tensors
from repro.exec import KernelPool, ShmArena, WorkerPool
from repro.exec import shm as shm_mod
from repro.exec import worker as worker_mod
from repro.util.errors import BatchExecutionError

N = 120


def make_pair(seed):
    rng = np.random.default_rng(seed)
    a = np.zeros(N)
    support = rng.choice(N, 12, replace=False)
    a[support] = rng.random(12) + 0.1
    b = np.zeros(N)
    lo = int(rng.integers(0, N - 30))
    b[lo:lo + 20] = rng.random(20) + 0.1
    a[lo] = 1.0
    return a, b


def dot_program(a, b):
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i]))


def dot_datasets(count, start_seed=1):
    return [program_tensors(dot_program(*make_pair(seed)))
            for seed in range(start_seed, start_seed + count)]


def named(tensors, name):
    return next(slot for slot, tensor in enumerate(tensors)
                if tensor.name == name)


def shm_entries():
    """This process's transport segments currently named in /dev/shm."""
    prefix = "%s_%d_" % (shm_mod.SHM_PREFIX, os.getpid())
    try:
        names = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-tmpfs platforms
        return set(shm_mod.active_segments())
    return {name for name in names if name.startswith(prefix)}


# -- in-process unit layer -------------------------------------------------


def test_segment_create_attach_view_close():
    before = set(shm_mod.active_segments())
    seg = shm_mod.ShmSegment.create(1024)
    assert seg.name in shm_mod.active_segments()
    view = seg.view(64, np.dtype("float64"), (8,))
    view[:] = np.arange(8.0)
    attached = shm_mod.ShmSegment.attach(seg.name)
    mirror = attached.view(64, np.dtype("float64"), (8,))
    assert np.array_equal(mirror, np.arange(8.0))
    # Writes through the attachment land in the owner's view.
    mirror[0] = 41.0
    assert view[0] == 41.0
    attached.close()  # non-owner close never unlinks
    assert seg.name in shm_entries()
    del view, mirror
    seg.close()
    seg.close()  # idempotent
    assert seg.name not in shm_entries()
    assert set(shm_mod.active_segments()) == before


def test_arena_adoption_and_residency():
    source = np.arange(100.0)
    with ShmArena(min_segment_bytes=1024) as arena:
        adopted = arena.add(source)
        assert np.array_equal(adopted, source)
        assert shm_mod.resident_descriptor(source) is None
        desc = shm_mod.resident_descriptor(adopted)
        assert desc is not None and desc[0] == "shm"
        assert arena.nbytes() >= source.nbytes
        # Already-resident arrays are returned as-is, not re-copied.
        assert arena.add(adopted) is adopted
        resident = adopted
        names = set(arena.segments)
    # Close purges residency and the /dev/shm names.
    assert shm_mod.resident_descriptor(resident) is None
    assert not names & shm_entries()


def test_adopted_tensors_survive_arena_close():
    """Closing an arena unlinks its /dev/shm names immediately, but
    the mapping must outlive any adopted views still in use — numpy
    views do not protect it on their own (``SharedMemory.close``
    unmaps underneath live buffer exports without raising), so a
    plain close here would turn later reads into use-after-free."""
    arena = ShmArena(min_segment_bytes=1024)
    view = arena.add(np.arange(256.0))
    names = set(arena.segments)
    arena.close()
    # Hygiene is immediate: the names are gone from /dev/shm ...
    assert not names & shm_entries()
    assert shm_mod.resident_descriptor(view) is None
    # ... yet the adopted tensor stays readable and writable.
    assert float(view.sum()) == float(np.arange(256.0).sum())
    view[3] = 41.0
    assert view[3] == 41.0


def test_staging_dedups_and_writes_back():
    staging = shm_mod.ShmStaging()
    shared = np.arange(8.0)
    out = np.zeros(4)
    desc_a = staging.stage(shared, dataset=0, writes=False)
    desc_b = staging.stage(shared, dataset=0, writes=False)
    desc_out = staging.stage(out, dataset=0, writes=True)
    assert desc_a == desc_b  # same array staged once per dataset
    name = staging.seal()
    seg = shm_mod.ShmSegment.attach(name)
    assert np.array_equal(
        seg.view(desc_a[1], np.dtype(desc_a[2]), desc_a[3]), shared)
    # Simulate the worker writing the output region.
    seg.view(desc_out[1], np.dtype(desc_out[2]), desc_out[3])[:] = 7.0
    seg.close()
    staging.writeback({0})
    assert np.array_equal(out, np.full(4, 7.0))
    staging.close()
    staging.close()  # idempotent
    assert name not in shm_entries()


def test_writeback_skips_failed_datasets():
    staging = shm_mod.ShmStaging()
    out = np.zeros(3)
    desc = staging.stage(out, dataset=5, writes=True)
    name = staging.seal()
    seg = shm_mod.ShmSegment.attach(name)
    seg.view(desc[1], np.dtype(desc[2]), desc[3])[:] = 9.0
    seg.close()
    staging.writeback(set())  # dataset 5 did not complete
    assert np.array_equal(out, np.zeros(3))
    staging.close()


def test_describe_and_build_args_roundtrip():
    with ShmArena(min_segment_bytes=1024) as arena:
        resident = arena.add(np.arange(16.0))
        staged = np.arange(5.0)
        builder = object()
        staging = shm_mod.ShmStaging()
        payload = shm_mod.describe_args(
            [resident, staged, builder], staging, dataset=0,
            output_ids={id(builder)})
        kinds = [desc[0] for desc in payload["args"]]
        assert kinds == ["shm", "stg", "obj"]
        assert payload["objs"] == [builder]
        assert payload["obj_outputs"] == [0]
        name = staging.seal()
        cache = shm_mod.SegmentCache()
        args = shm_mod.build_args(payload, name, cache)
        assert np.array_equal(args[0], resident)
        assert np.array_equal(args[1], staged)
        assert args[2] is builder
        del args
        cache.release_transient()
        cache.close()
        staging.close()


def test_run_chunk_in_process():
    """Exercise the worker loop without a subprocess: ship-once spec
    caching, progress marks, and the unknown-digest protocol error."""
    template = dot_program(*make_pair(0))
    kernel = fl.compile_kernel(template, instrument=True)
    spec = kernel.to_spec()
    artifact, _, _, _ = worker_mod.artifact_from_spec(spec)
    digest = "test-digest"

    def chunk_for(tensors, index, include_spec):
        staging = shm_mod.ShmStaging()
        args = artifact.bind(tensors)
        payload = shm_mod.describe_args(args, staging, index,
                                        output_ids=set())
        payload["index"] = index
        return staging, {
            "digest": digest,
            "spec": spec if include_spec else None,
            "staging": staging.seal(),
            "datasets": [payload],
        }

    marks = []
    cache = shm_mod.SegmentCache()
    datasets = dot_datasets(2)
    try:
        staging, chunk = chunk_for(datasets[0], 0, include_spec=True)
        reply = worker_mod.run_chunk(chunk, cache, mark=marks.append)
        staging.close()
        assert reply["error"] is None
        assert [r["index"] for r in reply["results"]] == [0]
        assert reply["results"][0]["ops"] > 0
        assert marks == [0, -1]  # in-flight index published, then idle

        # Second chunk under the same digest rides the cached spec.
        staging, chunk = chunk_for(datasets[1], 1, include_spec=False)
        reply = worker_mod.run_chunk(chunk, cache)
        staging.close()
        assert reply["error"] is None
        assert reply["results"][0]["spec_rebuild"] is False

        # Unknown digest with no spec is a pool protocol error,
        # attributed to the chunk's first dataset.
        staging, chunk = chunk_for(datasets[1], 7, include_spec=False)
        chunk["digest"] = "never-shipped"
        reply = worker_mod.run_chunk(chunk, cache)
        staging.close()
        assert reply["results"] == []
        assert reply["error"]["index"] == 7
    finally:
        cache.close()
        worker_mod._SPECS.pop(digest, None)
        worker_mod._SPECS.pop("never-shipped", None)


# -- end-to-end transport layer -------------------------------------------


def test_transport_does_not_pickle_tensor_data():
    """Acceptance instrumentation: after the spec has shipped, the
    per-batch pipe traffic is control-plane only — tensor payloads
    move through shared memory (``shm_bytes``), not pickle."""
    template = dot_program(*make_pair(0))
    kernel = fl.compile_kernel(template)
    tensor_bytes = 6 * N * 8  # six datasets, two dense N-vectors each
    with WorkerPool(max_workers=2) as workers:
        with ShmArena() as arena:
            datasets = [fl.share_dataset(tensors, arena)
                        for tensors in dot_datasets(6)]
            with KernelPool(kernel, executor="processes",
                            worker_pool=workers) as pool:
                pool.map(datasets)
                first = workers.stats()
                pool.map(datasets)
                second = workers.stats()
    # The warmed-up batch ships descriptors and builders only: far
    # less pipe traffic than the tensors it transported via shm.
    warm_pickle = second["pickle_bytes"] - first["pickle_bytes"]
    assert warm_pickle < 32 * 1024
    assert warm_pickle < tensor_bytes / 4
    assert second["shm_bytes"] >= 2 * arena.nbytes()
    assert second["specs_shipped"] <= workers.max_workers


def test_no_segments_leak_on_success_or_error():
    """After closing every owner, no transport segment from this
    process remains in /dev/shm — success and error paths alike."""
    before = shm_entries()
    before_active = set(shm_mod.active_segments())
    rng = np.random.default_rng(0)

    def dense_dot_program(a, b):
        A = fl.from_numpy(a, ("dense",), name="A")
        B = fl.from_numpy(b, ("dense",), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        return fl.forall(i, fl.increment(C[()], A[i] * B[i]))

    template = dense_dot_program(rng.random(8), rng.random(8))
    kernel = fl.compile_kernel(template, opt_level=1)
    datasets = []
    for position in range(5):
        tensors = program_tensors(
            dense_dot_program(rng.random(8), rng.random(8)))
        if position == 3:
            broken = tensors[named(tensors, "A")]
            broken.element.val = broken.element.val[:4]
        datasets.append(tensors)
    with WorkerPool(max_workers=2) as workers:
        with KernelPool(kernel, executor="processes",
                        worker_pool=workers) as pool:
            pool.map(datasets[:3])  # success path
            with pytest.raises(BatchExecutionError):
                pool.map(datasets)  # error path (dataset 3 raises)
        # The pool is still open: only its progress segment may
        # remain beyond the baseline.
        during = shm_entries() - before
        assert len(during) <= 1
    assert shm_entries() == before
    assert set(shm_mod.active_segments()) <= before_active
