"""Shared test configuration: Hypothesis profiles and deadline policy.

Two registered profiles, selected with ``HYPOTHESIS_PROFILE``:

``ci`` (the default)
    Full example counts, no deadline.  Compiled-kernel properties
    pay a per-example compile cost that varies wildly with machine
    load, so wall-clock deadlines only produce flaky failures —
    the deadline policy for this suite is *none*, centrally.

``dev``
    Capped example counts for fast local iteration:
    ``HYPOTHESIS_PROFILE=dev python -m pytest tests/properties``.

Shared data strategies live in :mod:`repro.fuzz.strategies` (they are
import-order-sensitive test *code*, not configuration) and are
imported from there by every ``tests/properties/`` module.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    deadline=None,
    suppress_health_check=(HealthCheck.too_slow,),
)
settings.register_profile(
    "dev",
    deadline=None,
    max_examples=20,
    suppress_health_check=(HealthCheck.too_slow,),
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
