"""Unit tests for expression printing and statement emission."""

from repro.ir import Call, Literal, Load, Var, asm, build, emit, ops
from repro.ir.pretty import expr_source
from repro.ir.runtime import kernel_globals


class TestExprSource:
    def test_literal(self):
        assert expr_source(Literal(3)) == "3"
        assert expr_source(Literal(2.5)) == "2.5"
        assert expr_source(Literal(ops.MISSING)) == "None"

    def test_infix_chain(self):
        expr = Call(ops.ADD, [Var("a"), Var("b"), Var("c")])
        assert expr_source(expr) == "a + b + c"

    def test_precedence_parentheses(self):
        expr = Call(ops.MUL, [Call(ops.ADD, [Var("a"), Var("b")]), Var("c")])
        assert expr_source(expr) == "(a + b) * c"

    def test_no_redundant_parentheses(self):
        expr = Call(ops.ADD, [Call(ops.MUL, [Var("a"), Var("b")]), Var("c")])
        assert expr_source(expr) == "a * b + c"

    def test_function_call_rendering(self):
        expr = Call(ops.MIN, [Var("a"), Var("b")])
        assert expr_source(expr) == "min(a, b)"

    def test_load(self):
        expr = Load("A_val", build.plus(Var("p"), 1))
        assert expr_source(expr) == "A_val[1 + p]"

    def test_unary_neg(self):
        assert expr_source(Call(ops.NEG, [Var("x")])) == "-x"

    def test_comparison(self):
        expr = Call(ops.LE, [Var("i"), Var("n")])
        assert expr_source(expr) == "i <= n"


class TestEmit:
    def test_assign(self):
        source = emit(asm.AssignStmt(Var("x"), Literal(1)))
        assert source == "x = 1\n"

    def test_accum_add(self):
        source = emit(asm.AccumStmt(Var("acc"), ops.ADD, Var("v")))
        assert source == "acc += v\n"

    def test_accum_min_uses_function(self):
        source = emit(asm.AccumStmt(Var("acc"), ops.MIN, Var("v")))
        assert source == "acc = min(acc, v)\n"

    def test_for_loop(self):
        loop = asm.ForLoop("i", 0, Var("n"),
                           asm.AccumStmt(Var("acc"), ops.ADD, Var("i")))
        source = emit(loop)
        assert source == "for i in range(0, n):\n    acc += i\n"

    def test_empty_loop_body_gets_pass(self):
        loop = asm.ForLoop("i", 0, 3, asm.Block([]))
        assert "pass" in emit(loop)

    def test_if_elif_else(self):
        branch = asm.If([
            (Var("a"), asm.AssignStmt(Var("x"), 1)),
            (Var("b"), asm.AssignStmt(Var("x"), 2)),
            (None, asm.AssignStmt(Var("x"), 3)),
        ])
        source = emit(branch)
        assert source.splitlines() == [
            "if a:",
            "    x = 1",
            "elif b:",
            "    x = 2",
            "else:",
            "    x = 3",
        ]

    def test_nested_blocks_flatten(self):
        inner = asm.Block([asm.AssignStmt(Var("x"), 1)])
        outer = asm.Block([inner, asm.AssignStmt(Var("y"), 2)])
        assert len(outer.stmts) == 2

    def test_emitted_function_executes(self):
        body = asm.Block([
            asm.AssignStmt(Var("acc"), Literal(0)),
            asm.ForLoop("i", 0, Var("n"),
                        asm.AccumStmt(Var("acc"), ops.ADD, Var("i"))),
        ])
        func = asm.FuncDef("kernel", ["n"], body, returns=["acc"])
        namespace = kernel_globals()
        exec(emit(func), namespace)
        assert namespace["kernel"](5) == 10

    def test_while_loop(self):
        loop = asm.WhileLoop(Call(ops.LT, [Var("i"), Var("n")]),
                             asm.AccumStmt(Var("i"), ops.ADD, Literal(1)))
        source = emit(loop)
        assert source.splitlines()[0] == "while i < n:"

    def test_comment(self):
        assert emit(asm.Comment("hello")) == "# hello\n"
