"""Unit tests for expression printing and statement emission."""

from repro.ir import Call, Literal, Load, Var, asm, build, emit, ops
from repro.ir.pretty import expr_source
from repro.ir.runtime import kernel_globals


class TestExprSource:
    def test_literal(self):
        assert expr_source(Literal(3)) == "3"
        assert expr_source(Literal(2.5)) == "2.5"
        assert expr_source(Literal(ops.MISSING)) == "None"

    def test_infix_chain(self):
        expr = Call(ops.ADD, [Var("a"), Var("b"), Var("c")])
        assert expr_source(expr) == "a + b + c"

    def test_precedence_parentheses(self):
        expr = Call(ops.MUL, [Call(ops.ADD, [Var("a"), Var("b")]), Var("c")])
        assert expr_source(expr) == "(a + b) * c"

    def test_no_redundant_parentheses(self):
        expr = Call(ops.ADD, [Call(ops.MUL, [Var("a"), Var("b")]), Var("c")])
        assert expr_source(expr) == "a * b + c"

    def test_function_call_rendering(self):
        expr = Call(ops.MIN, [Var("a"), Var("b")])
        assert expr_source(expr) == "min(a, b)"

    def test_load(self):
        expr = Load("A_val", build.plus(Var("p"), 1))
        assert expr_source(expr) == "A_val[1 + p]"

    def test_unary_neg(self):
        assert expr_source(Call(ops.NEG, [Var("x")])) == "-x"

    def test_comparison(self):
        expr = Call(ops.LE, [Var("i"), Var("n")])
        assert expr_source(expr) == "i <= n"


class TestEmit:
    def test_assign(self):
        source = emit(asm.AssignStmt(Var("x"), Literal(1)))
        assert source == "x = 1\n"

    def test_accum_add(self):
        source = emit(asm.AccumStmt(Var("acc"), ops.ADD, Var("v")))
        assert source == "acc += v\n"

    def test_accum_min_uses_function(self):
        source = emit(asm.AccumStmt(Var("acc"), ops.MIN, Var("v")))
        assert source == "acc = min(acc, v)\n"

    def test_for_loop(self):
        loop = asm.ForLoop("i", 0, Var("n"),
                           asm.AccumStmt(Var("acc"), ops.ADD, Var("i")))
        source = emit(loop)
        assert source == "for i in range(0, n):\n    acc += i\n"

    def test_empty_loop_body_gets_pass(self):
        loop = asm.ForLoop("i", 0, 3, asm.Block([]))
        assert "pass" in emit(loop)

    def test_if_elif_else(self):
        branch = asm.If([
            (Var("a"), asm.AssignStmt(Var("x"), 1)),
            (Var("b"), asm.AssignStmt(Var("x"), 2)),
            (None, asm.AssignStmt(Var("x"), 3)),
        ])
        source = emit(branch)
        assert source.splitlines() == [
            "if a:",
            "    x = 1",
            "elif b:",
            "    x = 2",
            "else:",
            "    x = 3",
        ]

    def test_nested_blocks_flatten(self):
        inner = asm.Block([asm.AssignStmt(Var("x"), 1)])
        outer = asm.Block([inner, asm.AssignStmt(Var("y"), 2)])
        assert len(outer.stmts) == 2

    def test_emitted_function_executes(self):
        body = asm.Block([
            asm.AssignStmt(Var("acc"), Literal(0)),
            asm.ForLoop("i", 0, Var("n"),
                        asm.AccumStmt(Var("acc"), ops.ADD, Var("i"))),
        ])
        func = asm.FuncDef("kernel", ["n"], body, returns=["acc"])
        namespace = kernel_globals()
        exec(emit(func), namespace)
        assert namespace["kernel"](5) == 10

    def test_accum_logical_and_avoids_bitwise(self):
        # Python's &= is bitwise; the emitter must stay with `and`.
        source = emit(asm.AccumStmt(Var("acc"), ops.AND, Var("v")))
        assert source == "acc = acc and (v)\n"

    def test_accum_logical_or_avoids_bitwise(self):
        source = emit(asm.AccumStmt(Var("acc"), ops.OR, Var("v")))
        assert source == "acc = acc or (v)\n"

    def test_accum_logical_parenthesizes_value(self):
        # Without the parentheses `a or b and c` would rebind by
        # precedence; the emitted form must group the update value.
        value = Call(ops.AND, [Var("b"), Var("c")])
        source = emit(asm.AccumStmt(Var("a"), ops.OR, value))
        assert source == "a = a or (b and c)\n"

    def test_accum_symbol_ops(self):
        assert emit(asm.AccumStmt(Var("a"), ops.SUB, Var("v"))) \
            == "a -= v\n"
        assert emit(asm.AccumStmt(Var("a"), ops.MUL, Var("v"))) \
            == "a *= v\n"
        assert emit(asm.AccumStmt(Var("a"), ops.DIV, Var("v"))) \
            == "a /= v\n"

    def test_accum_max_uses_function(self):
        source = emit(asm.AccumStmt(Var("acc"), ops.MAX, Var("v")))
        assert source == "acc = max(acc, v)\n"

    def test_accum_symboled_op_outside_augmented_set(self):
        # POW has an infix symbol but no augmented-assignment form the
        # emitter uses; it must fall back to the runtime call.
        source = emit(asm.AccumStmt(Var("acc"), ops.POW, Var("v")))
        assert source == "acc = pow(acc, v)\n"

    def test_accum_into_load_target(self):
        target = Load("out", Var("p"))
        source = emit(asm.AccumStmt(target, ops.MIN, Var("v")))
        assert source == "out[p] = min(out[p], v)\n"

    def test_accum_non_symbol_op_executes(self):
        body = asm.Block([
            asm.AssignStmt(Var("acc"), Literal(9)),
            asm.ForLoop("i", 0, Var("n"),
                        asm.AccumStmt(Var("acc"), ops.MIN, Var("i"))),
        ])
        func = asm.FuncDef("kernel", ["n"], body, returns=["acc"])
        namespace = kernel_globals()
        exec(emit(func), namespace)
        assert namespace["kernel"](5) == 0

    def test_accum_logical_executes(self):
        body = asm.Block([
            asm.AssignStmt(Var("acc"), Literal(True)),
            asm.ForLoop("i", 0, Var("n"),
                        asm.AccumStmt(Var("acc"), ops.AND,
                                      Call(ops.LT, [Var("i"),
                                                    Literal(3)]))),
        ])
        func = asm.FuncDef("kernel", ["n"], body, returns=["acc"])
        namespace = kernel_globals()
        exec(emit(func), namespace)
        assert namespace["kernel"](2) is True
        assert namespace["kernel"](5) is False

    def test_while_loop(self):
        loop = asm.WhileLoop(Call(ops.LT, [Var("i"), Var("n")]),
                             asm.AccumStmt(Var("i"), ops.ADD, Literal(1)))
        source = emit(loop)
        assert source.splitlines()[0] == "while i < n:"

    def test_comment(self):
        assert emit(asm.Comment("hello")) == "# hello\n"
