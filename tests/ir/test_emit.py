"""Unit tests for expression printing and statement emission."""

from repro.ir import Call, Literal, Load, Var, asm, build, emit, ops
from repro.ir.pretty import expr_source
from repro.ir.runtime import kernel_globals


class TestExprSource:
    def test_literal(self):
        assert expr_source(Literal(3)) == "3"
        assert expr_source(Literal(2.5)) == "2.5"
        assert expr_source(Literal(ops.MISSING)) == "None"

    def test_infix_chain(self):
        expr = Call(ops.ADD, [Var("a"), Var("b"), Var("c")])
        assert expr_source(expr) == "a + b + c"

    def test_precedence_parentheses(self):
        expr = Call(ops.MUL, [Call(ops.ADD, [Var("a"), Var("b")]), Var("c")])
        assert expr_source(expr) == "(a + b) * c"

    def test_no_redundant_parentheses(self):
        expr = Call(ops.ADD, [Call(ops.MUL, [Var("a"), Var("b")]), Var("c")])
        assert expr_source(expr) == "a * b + c"

    def test_function_call_rendering(self):
        expr = Call(ops.MIN, [Var("a"), Var("b")])
        assert expr_source(expr) == "min(a, b)"

    def test_load(self):
        expr = Load("A_val", build.plus(Var("p"), 1))
        assert expr_source(expr) == "A_val[1 + p]"

    def test_unary_neg(self):
        assert expr_source(Call(ops.NEG, [Var("x")])) == "-x"

    def test_comparison(self):
        expr = Call(ops.LE, [Var("i"), Var("n")])
        assert expr_source(expr) == "i <= n"


class TestEmit:
    def test_assign(self):
        source = emit(asm.AssignStmt(Var("x"), Literal(1)))
        assert source == "x = 1\n"

    def test_accum_add(self):
        source = emit(asm.AccumStmt(Var("acc"), ops.ADD, Var("v")))
        assert source == "acc += v\n"

    def test_accum_min_uses_function(self):
        source = emit(asm.AccumStmt(Var("acc"), ops.MIN, Var("v")))
        assert source == "acc = min(acc, v)\n"

    def test_for_loop(self):
        loop = asm.ForLoop("i", 0, Var("n"),
                           asm.AccumStmt(Var("acc"), ops.ADD, Var("i")))
        source = emit(loop)
        assert source == "for i in range(0, n):\n    acc += i\n"

    def test_empty_loop_body_gets_pass(self):
        loop = asm.ForLoop("i", 0, 3, asm.Block([]))
        assert "pass" in emit(loop)

    def test_if_elif_else(self):
        branch = asm.If([
            (Var("a"), asm.AssignStmt(Var("x"), 1)),
            (Var("b"), asm.AssignStmt(Var("x"), 2)),
            (None, asm.AssignStmt(Var("x"), 3)),
        ])
        source = emit(branch)
        assert source.splitlines() == [
            "if a:",
            "    x = 1",
            "elif b:",
            "    x = 2",
            "else:",
            "    x = 3",
        ]

    def test_nested_blocks_flatten(self):
        inner = asm.Block([asm.AssignStmt(Var("x"), 1)])
        outer = asm.Block([inner, asm.AssignStmt(Var("y"), 2)])
        assert len(outer.stmts) == 2

    def test_emitted_function_executes(self):
        body = asm.Block([
            asm.AssignStmt(Var("acc"), Literal(0)),
            asm.ForLoop("i", 0, Var("n"),
                        asm.AccumStmt(Var("acc"), ops.ADD, Var("i"))),
        ])
        func = asm.FuncDef("kernel", ["n"], body, returns=["acc"])
        namespace = kernel_globals()
        exec(emit(func), namespace)
        assert namespace["kernel"](5) == 10

    def test_accum_logical_and_avoids_bitwise(self):
        # Python's &= is bitwise; the emitter must stay with `and`.
        source = emit(asm.AccumStmt(Var("acc"), ops.AND, Var("v")))
        assert source == "acc = acc and (v)\n"

    def test_accum_logical_or_avoids_bitwise(self):
        source = emit(asm.AccumStmt(Var("acc"), ops.OR, Var("v")))
        assert source == "acc = acc or (v)\n"

    def test_accum_logical_parenthesizes_value(self):
        # Without the parentheses `a or b and c` would rebind by
        # precedence; the emitted form must group the update value.
        value = Call(ops.AND, [Var("b"), Var("c")])
        source = emit(asm.AccumStmt(Var("a"), ops.OR, value))
        assert source == "a = a or (b and c)\n"

    def test_accum_symbol_ops(self):
        assert emit(asm.AccumStmt(Var("a"), ops.SUB, Var("v"))) \
            == "a -= v\n"
        assert emit(asm.AccumStmt(Var("a"), ops.MUL, Var("v"))) \
            == "a *= v\n"
        assert emit(asm.AccumStmt(Var("a"), ops.DIV, Var("v"))) \
            == "a /= v\n"

    def test_accum_max_uses_function(self):
        source = emit(asm.AccumStmt(Var("acc"), ops.MAX, Var("v")))
        assert source == "acc = max(acc, v)\n"

    def test_accum_symboled_op_outside_augmented_set(self):
        # POW has an infix symbol but no augmented-assignment form the
        # emitter uses; it must fall back to the runtime call.
        source = emit(asm.AccumStmt(Var("acc"), ops.POW, Var("v")))
        assert source == "acc = pow(acc, v)\n"

    def test_accum_into_load_target(self):
        target = Load("out", Var("p"))
        source = emit(asm.AccumStmt(target, ops.MIN, Var("v")))
        assert source == "out[p] = min(out[p], v)\n"

    def test_accum_non_symbol_op_executes(self):
        body = asm.Block([
            asm.AssignStmt(Var("acc"), Literal(9)),
            asm.ForLoop("i", 0, Var("n"),
                        asm.AccumStmt(Var("acc"), ops.MIN, Var("i"))),
        ])
        func = asm.FuncDef("kernel", ["n"], body, returns=["acc"])
        namespace = kernel_globals()
        exec(emit(func), namespace)
        assert namespace["kernel"](5) == 0

    def test_accum_logical_executes(self):
        body = asm.Block([
            asm.AssignStmt(Var("acc"), Literal(True)),
            asm.ForLoop("i", 0, Var("n"),
                        asm.AccumStmt(Var("acc"), ops.AND,
                                      Call(ops.LT, [Var("i"),
                                                    Literal(3)]))),
        ])
        func = asm.FuncDef("kernel", ["n"], body, returns=["acc"])
        namespace = kernel_globals()
        exec(emit(func), namespace)
        assert namespace["kernel"](2) is True
        assert namespace["kernel"](5) is False

    def test_while_loop(self):
        loop = asm.WhileLoop(Call(ops.LT, [Var("i"), Var("n")]),
                             asm.AccumStmt(Var("i"), ops.ADD, Literal(1)))
        source = emit(loop)
        assert source.splitlines()[0] == "while i < n:"

    def test_comment(self):
        assert emit(asm.Comment("hello")) == "# hello\n"


class TestOptimizerProducedShapes:
    """Round-trip edge cases the optimizer pipeline newly produces."""

    def emitted(self, stmt):
        return emit(stmt)

    def test_leading_else_branch_inlines(self):
        # fold_constants can prove every conditional branch false,
        # leaving only the else: the body emits inline, unguarded.
        stmt = asm.If([(None, asm.Block([asm.Raw("work()")]))])
        assert self.emitted(stmt) == "work()\n"

    def test_nested_if_with_pruned_branches(self):
        inner = asm.If([(None, asm.Block([asm.Raw("inner()")]))])
        outer = asm.If([
            (build.lt(Var("a"), Var("b")), asm.Block([inner])),
        ])
        source = self.emitted(outer)
        assert source == "if a < b:\n    inner()\n"
        compile(source, "<test>", "exec")

    def test_all_empty_if_elided(self):
        stmt = asm.If([(build.lt(Var("a"), Var("b")), asm.Block([]))])
        block = asm.Block([stmt, asm.Raw("after()")])
        assert self.emitted(block) == "after()\n"

    def test_hoisted_assigns_before_loop(self):
        # LICM emits temp assignments directly ahead of the loop,
        # inside the entry guard.
        guard = asm.If([(build.lt(Var("a"), Var("b")), asm.Block([
            asm.AssignStmt("w_x", Load("w", Literal(0))),
            asm.ForLoop("i", Var("a"), Var("b"),
                        asm.AccumStmt("acc", ops.ADD, Var("w_x"))),
        ]))])
        source = self.emitted(guard)
        assert source == ("if a < b:\n"
                          "    w_x = w[0]\n"
                          "    for i in range(a, b):\n"
                          "        acc += w_x\n")
        compile(source, "<test>", "exec")

    def test_raw_numpy_slice_statements(self):
        block = asm.Block([
            asm.Raw("out[0:8] += (x[0:8] * y[1:9])"),
            asm.Raw("acc += _np.dot(x[a:b], y[a:b:2])"),
        ])
        source = self.emitted(block)
        assert "out[0:8] += (x[0:8] * y[1:9])" in source
        compile(source, "<test>", "exec")

    def test_vectorized_kernel_namespace_has_numpy(self):
        import numpy as np

        source = ("def kernel(x, y):\n"
                  "    return _np.dot(x[0:3], y[0:3])\n")
        namespace = kernel_globals()
        exec(compile(source, "<test>", "exec"), namespace)
        result = namespace["kernel"](np.arange(3.0), np.arange(3.0))
        assert result == 5.0

    def test_slice_source_rendering(self):
        from repro.ir.pretty import slice_source

        assert slice_source("x", Literal(0), Literal(8)) == "x[0:8]"
        assert slice_source("x", Var("a"), build.plus(Var("a"), 4),
                            step=2) == "x[a:4 + a:2]"
