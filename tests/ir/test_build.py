"""Unit tests for IR smart constructors."""

from repro.ir import Call, Literal, MISSING, Var, build, ops


class TestPlus:
    def test_folds_constants(self):
        assert build.plus(1, 2, 3) == Literal(6)

    def test_drops_zero_identity(self):
        assert build.plus(Var("x"), 0) == Var("x")

    def test_flattens_nested_adds(self):
        inner = build.plus(Var("a"), Var("b"))
        out = build.plus(inner, Var("c"))
        assert out == Call(ops.ADD, [Var("a"), Var("b"), Var("c")])

    def test_empty_sum_is_zero(self):
        assert build.plus() == Literal(0)

    def test_constant_first(self):
        out = build.plus(Var("x"), 2, 3)
        assert out == Call(ops.ADD, [Literal(5), Var("x")])


class TestTimes:
    def test_annihilator_zero(self):
        assert build.times(Var("x"), 0) == Literal(0)

    def test_identity_one(self):
        assert build.times(Var("x"), 1) == Var("x")

    def test_folds(self):
        assert build.times(2, 3) == Literal(6)


class TestMinMax:
    def test_min_folds(self):
        assert build.minimum(3, 1, 2) == Literal(1)

    def test_min_keeps_symbolic(self):
        out = build.minimum(Var("a"), 4, 9)
        assert out == Call(ops.MIN, [Literal(4), Var("a")])

    def test_max_flattens(self):
        out = build.maximum(build.maximum(Var("a"), Var("b")), Var("c"))
        assert out == Call(ops.MAX, [Var("a"), Var("b"), Var("c")])

    def test_single_arg_passthrough(self):
        assert build.minimum(Var("a")) == Var("a")


class TestBool:
    def test_and_annihilates_on_false(self):
        assert build.land(Var("p"), False) == Literal(False)

    def test_and_drops_true(self):
        assert build.land(Var("p"), True) == Var("p")

    def test_or_annihilates_on_true(self):
        assert build.lor(Var("p"), True) == Literal(True)

    def test_or_drops_false(self):
        assert build.lor(Var("p"), False) == Var("p")


class TestMinus:
    def test_minus_zero(self):
        assert build.minus(Var("x"), 0) == Var("x")

    def test_minus_folds(self):
        assert build.minus(7, 3) == Literal(4)


class TestCoalesce:
    def test_drops_literal_missing(self):
        out = build.coalesce(Literal(MISSING), Var("x"))
        assert out == Var("x")

    def test_all_missing(self):
        assert build.coalesce(Literal(MISSING)) == Literal(MISSING)

    def test_literal_short_circuits(self):
        out = build.coalesce(Literal(3), Var("x"))
        assert out == Literal(3)

    def test_keeps_runtime_order(self):
        out = build.coalesce(Var("a"), Var("b"))
        assert out == Call(ops.COALESCE, [Var("a"), Var("b")])


class TestCall:
    def test_folds_all_literal(self):
        assert build.call(ops.EQ, 3, 3) == Literal(True)

    def test_missing_propagates_through_mul(self):
        assert build.call(ops.MUL, Literal(MISSING), 5) == Literal(MISSING)
