"""Unit and golden tests for the target-IR optimizer pipeline.

The unit tests drive each pass over hand-built asm trees; the golden
tests compile real CIN programs and assert the pass actually fired on
the emitted source (LICM and CSE on the paper's SpMSpV kernel, numpy
vectorization on dense loops).
"""

import numpy as np
import pytest

import repro.lang as fl
from repro.bench.kernels import spmspv_program
from repro.ir import asm, build, ops
from repro.ir.emit import emit
from repro.ir.nodes import Literal, Load, Var
from repro.ir.optimize import (
    DEFAULT_OPT_LEVEL,
    PIPELINE,
    can_raise,
    dead_code,
    eliminate_common_subexprs,
    entry_exprs,
    fold_constants,
    hoist_invariants,
    linear_parts,
    optimize_kernel,
    vectorize,
)


def func_of(*stmts, params=("buf",), returns=()):
    return asm.FuncDef("kernel", params, asm.Block(stmts),
                       returns=returns)


class TestFoldConstants:
    def test_literal_condition_prunes_branches(self):
        stmt = asm.If([
            (build.lt(Literal(3), Literal(1)), asm.Raw("dead()")),
            (build.lt(Literal(1), Literal(3)), asm.Raw("live()")),
            (None, asm.Raw("other()")),
        ])
        folded = fold_constants(func_of(stmt))
        source = emit(folded)
        assert "dead()" not in source
        assert "live()" in source
        assert "other()" not in source
        assert "if" not in source  # the taken branch inlines

    def test_statically_empty_loop_vanishes(self):
        loop = asm.ForLoop("i", Literal(5), Literal(5),
                           asm.Raw("never()"))
        source = emit(fold_constants(func_of(loop)))
        assert "never()" not in source

    def test_unit_loop_unrolls(self):
        loop = asm.ForLoop("i", Literal(3), Literal(4),
                           asm.AssignStmt(Load("buf", Var("i")),
                                          Var("i")))
        source = emit(fold_constants(func_of(loop)))
        assert "for" not in source
        assert "buf[3] = 3" in source

    def test_copy_propagation_feeds_simplification(self):
        stmts = [
            asm.AssignStmt("x", Literal(2)),
            asm.AssignStmt("y", Var("x")),
            asm.AssignStmt(Load("buf", Literal(0)),
                           build.times(Var("y"), Literal(3))),
        ]
        source = emit(fold_constants(func_of(*stmts)))
        assert "buf[0] = 6" in source

    def test_literal_accumulation_folds_to_assignment(self):
        stmts = [
            asm.AssignStmt("n", Literal(0)),
            asm.AccumStmt("n", ops.ADD, Literal(1)),
            asm.AccumStmt("n", ops.ADD, Literal(2)),
            asm.AssignStmt(Load("buf", Literal(0)), Var("n")),
        ]
        source = emit(fold_constants(func_of(*stmts)))
        assert "buf[0] = 3" in source

    def test_propagation_stops_at_reassignment_in_loop(self):
        stmts = [
            asm.AssignStmt("x", Literal(1)),
            asm.WhileLoop(build.lt(Var("x"), Load("buf", Literal(0))),
                          asm.AccumStmt("x", ops.ADD, Literal(1))),
            asm.AssignStmt(Load("buf", Literal(1)), Var("x")),
        ]
        source = emit(fold_constants(func_of(*stmts)))
        # x is mutated by the loop: the final store must read x, not 1.
        assert "buf[1] = x" in source

    def test_raw_kills_propagation(self):
        stmts = [
            asm.AssignStmt("x", Literal(1)),
            asm.Raw("x += buf[0]"),
            asm.AssignStmt(Load("buf", Literal(1)), Var("x")),
        ]
        source = emit(fold_constants(func_of(*stmts)))
        assert "buf[1] = x" in source


class TestDeadCode:
    def test_dead_store_before_overwrite(self):
        stmts = [
            asm.AssignStmt("acc", Load("buf", Literal(0))),
            asm.AssignStmt("acc", Literal(0.0)),
            asm.AssignStmt(Load("buf", Literal(0)), Var("acc")),
        ]
        source = emit(dead_code(func_of(*stmts)))
        assert source.count("acc =") == 1
        assert "buf[0] = acc" in source

    def test_trailing_dead_assign_dropped(self):
        stmts = [
            asm.AssignStmt(Load("buf", Literal(0)), Literal(1.0)),
            asm.AssignStmt("leftover", Var("x")),
        ]
        source = emit(dead_code(func_of(*stmts)))
        assert "leftover" not in source

    def test_returned_variable_stays_live(self):
        stmts = [asm.AssignStmt("n", Literal(7))]
        source = emit(dead_code(func_of(*stmts, returns=("n",))))
        assert "n = 7" in source

    def test_raw_keeps_its_identifiers_live(self):
        stmts = [
            asm.AssignStmt("x", Literal(1)),
            asm.Raw("buf.fill(x)"),
        ]
        source = emit(dead_code(func_of(*stmts)))
        assert "x = 1" in source

    def test_trailing_empty_branches_pruned(self):
        branches = [
            (build.lt(Var("a"), Var("b")), asm.Raw("first()")),
            (build.lt(Var("b"), Var("a")), asm.Block([])),
            (None, asm.Block([])),
        ]
        source = emit(dead_code(func_of(asm.If(branches),
                                        params=("a", "b"))))
        assert "first()" in source
        # Both the empty else and the (then-trailing) empty elif go.
        assert "else" not in source
        assert "elif" not in source

    def test_empty_middle_branch_survives(self):
        branches = [
            (build.lt(Var("a"), Var("b")), asm.Block([])),
            (None, asm.Raw("fallback()")),
        ]
        source = emit(dead_code(func_of(asm.If(branches),
                                        params=("a", "b"))))
        # Dropping the empty first branch would reroute its cases into
        # the else; it must stay, rendered with a pass body.
        assert "if a < b:" in source
        assert "pass" in source
        assert "fallback()" in source

    def test_accumulation_into_dead_var_dropped(self):
        stmts = [
            asm.AssignStmt("n", Literal(0)),
            asm.AccumStmt("n", ops.ADD, Literal(1)),
            asm.AssignStmt(Load("buf", Literal(0)), Literal(2.0)),
        ]
        source = emit(dead_code(func_of(*stmts)))
        assert "n =" not in source
        assert "n +=" not in source

    def test_while_condition_initializer_survives_bottom_write(self):
        """Found by the fuzz engine (corpus case_12): a while body
        whose *last* statement overwrites the condition variable must
        not kill the initializer above the loop — the condition reads
        it before the body ever runs."""
        body = asm.Block([
            asm.AssignStmt(Load("buf", Literal(0)), Var("cur")),
            asm.AssignStmt("cur", Load("buf", Literal(1))),
        ])
        stmts = [
            asm.AssignStmt("cur", Literal(0)),
            asm.WhileLoop(build.lt(Var("cur"), Var("stop")), body),
        ]
        source = emit(dead_code(func_of(*stmts, params=("buf", "stop"))))
        assert "cur = 0" in source


class TestHoistInvariants:
    def test_invariant_load_hoists_with_guard(self):
        loop = asm.ForLoop(
            "i", Var("a"), Var("b"),
            asm.AccumStmt("acc", ops.ADD,
                          build.times(Load("w", Literal(0)),
                                      Load("x", Var("i")))))
        result = hoist_invariants(func_of(loop,
                                          params=("a", "b", "w", "x")))
        source = emit(result)
        # The w[0] load hoists, guarded by the loop entry condition
        # (it may be out of bounds when the loop never runs).
        assert "if a < b:" in source
        lines = source.splitlines()
        hoist_line = next(line for line in lines if "= w[0]" in line)
        loop_line = next(line for line in lines if "for i" in line)
        assert lines.index(hoist_line) < lines.index(loop_line)
        assert "w[0]" not in loop_line and source.count("w[0]") == 1

    def test_static_bounds_need_no_guard(self):
        loop = asm.ForLoop(
            "i", Literal(0), Literal(8),
            asm.AccumStmt("acc", ops.ADD,
                          build.times(Load("w", Literal(0)),
                                      Load("x", Var("i")))))
        source = emit(hoist_invariants(func_of(loop, params=("w", "x"))))
        assert "if" not in source
        assert "= w[0]" in source

    def test_mutated_inputs_do_not_hoist(self):
        body = asm.Block([
            asm.AccumStmt("acc", ops.ADD, Load("x", Var("q"))),
            asm.AccumStmt("q", ops.ADD, Literal(1)),
        ])
        loop = asm.WhileLoop(build.lt(Var("q"), Var("n")), body)
        source = emit(hoist_invariants(func_of(loop, params=("x", "n"))))
        # x[q] depends on the mutated cursor: it must stay in the loop.
        assert "x[q]" in source
        while_at = source.index("while")
        assert source.index("x[q]") > while_at

    def test_conditionally_evaluated_load_stays_put(self):
        body = asm.If([(build.lt(Var("i"), Var("k")),
                        asm.AccumStmt("acc", ops.ADD,
                                      Load("w", Literal(0))))])
        loop = asm.ForLoop("i", Var("a"), Var("b"), body)
        source = emit(hoist_invariants(
            func_of(loop, params=("a", "b", "k", "w"))))
        # w[0] only runs when i < k: hoisting would speculate the load.
        lines = source.splitlines()
        load_line = next(line for line in lines if "w[0]" in line)
        assert "if i < k" in lines[lines.index(load_line) - 1]

    def test_pure_arithmetic_hoists_unguarded(self):
        loop = asm.ForLoop(
            "j", Var("a"), Var("b"),
            asm.AssignStmt(Load("out", build.plus(
                build.times(Literal(8), Var("i")), Var("j"))),
                Var("j")))
        source = emit(hoist_invariants(
            func_of(loop, params=("a", "b", "i", "out"))))
        # 8 * i cannot raise: hoisted with no guard.
        assert "if" not in source
        assert "= 8 * i" in source


class TestCommonSubexpressions:
    def test_repeated_condition_shares_a_temp(self):
        cond = build.eq(Var("p"), Var("q"))
        stmts = [
            asm.If([(cond, asm.AssignStmt(Load("out", Literal(0)),
                                          Var("z")))]),
            asm.If([(cond, asm.AccumStmt("p", ops.ADD, Literal(1)))]),
        ]
        source = emit(eliminate_common_subexprs(
            func_of(*stmts, params=("p", "q", "z", "out"))))
        assert source.count("p == q") == 1

    def test_raw_body_blocks_sharing(self):
        cond = build.eq(Var("p"), Var("q"))
        stmts = [
            asm.If([(cond, asm.Raw("out.append(p)"))]),
            asm.If([(cond, asm.Raw("out.append(q)"))]),
        ]
        source = emit(eliminate_common_subexprs(
            func_of(*stmts, params=("p", "q", "out"))))
        # The Raw line mentions p, which conservatively counts as a
        # write: the comparison must be recomputed.
        assert source.count("p == q") == 2

    def test_write_invalidates_availability(self):
        expr = build.plus(Var("p"), Literal(1))
        stmts = [
            asm.AssignStmt(Load("buf", Literal(0)), expr),
            asm.AccumStmt("p", ops.ADD, Literal(1)),
            asm.AssignStmt(Load("buf", Literal(1)), expr),
        ]
        source = emit(eliminate_common_subexprs(
            func_of(*stmts, params=("p", "buf"))))
        # p changed between the two uses: both must recompute.
        assert source.count("1 + p") == 2

    def test_guarded_load_is_never_materialized_unconditionally(self):
        # `(buf[n - 1] if n > 0 else 0)` twice in a block: the load
        # lives in a lazy ifelse arm, so CSE must NOT hoist it into an
        # unconditional temp — with n == 0 and an empty buffer that
        # would raise where the original returns 0.
        guarded = build.call(
            ops.IFELSE, build.gt(Var("n"), Literal(0)),
            Load("buf", build.minus(Var("n"), Literal(1))),
            Literal(0.0))
        stmts = [
            asm.AssignStmt("x", guarded),
            asm.AssignStmt("y", guarded),
            asm.AssignStmt(Load("out", Literal(0)),
                           build.plus(Var("x"), Var("y"))),
        ]
        func = func_of(*stmts, params=("buf", "out", "n"))
        from repro.ir.optimize import optimize_kernel as run_pipeline

        for optimized in (eliminate_common_subexprs(func),
                          run_pipeline(func, 1), run_pipeline(func, 2)):
            source = emit(optimized)
            for line in source.splitlines():
                if "buf[" in line:
                    # The load must stay inside a conditional
                    # expression (the guard may itself be a CSE temp).
                    assert " if " in line, source
        # And the emitted code really tolerates the empty-buffer case.
        namespace = {"buf": [], "n": 0, "out": [None]}
        exec(emit(run_pipeline(func, 2)).replace("def kernel", "def k")
             + "k(buf, out, n)\n", namespace)
        assert namespace["out"][0] == 0.0

    def test_store_invalidates_loads_of_that_buffer(self):
        load = Load("buf", Var("p"))
        stmts = [
            asm.AssignStmt("x", load),
            asm.AssignStmt(Load("buf", Var("p")), Literal(0.0)),
            asm.AssignStmt("y", load),
            asm.AssignStmt(Load("out", Literal(0)),
                           build.plus(Var("x"), Var("y"))),
        ]
        source = emit(eliminate_common_subexprs(
            func_of(*stmts, params=("buf", "out", "p"))))
        assert source.count("buf[p]") >= 3  # the load is NOT reused

    def test_assignment_doubles_as_temp(self):
        expr = build.plus(Var("p"), Var("q"))
        stmts = [
            asm.AssignStmt("x", expr),
            asm.AssignStmt(Load("buf", Literal(0)),
                           build.times(expr, Literal(2))),
        ]
        source = emit(eliminate_common_subexprs(
            func_of(*stmts, params=("p", "q", "buf"))))
        assert "x = p + q" in source
        assert "buf[0] = 2 * x" in source


class TestVectorize:
    def test_elementwise_map_becomes_slice_assign(self):
        loop = asm.ForLoop(
            "i", Literal(0), Literal(8),
            asm.AssignStmt(Load("out", Var("i")),
                           build.plus(Load("x", Var("i")),
                                      Load("y", Var("i")))))
        source = emit(vectorize(func_of(loop,
                                        params=("out", "x", "y"))))
        assert "out[0:8] = (x[0:8] + y[0:8])" in source
        assert "for" not in source

    def test_reduction_becomes_dot(self):
        loop = asm.ForLoop(
            "i", Literal(0), Literal(16),
            asm.AccumStmt("acc", ops.ADD,
                          build.times(Load("x", Var("i")),
                                      Load("y", Var("i")))))
        source = emit(vectorize(func_of(loop, params=("x", "y"))))
        assert "acc += _np.dot(x[0:16], y[0:16])" in source

    def test_dynamic_bounds_get_a_guard(self):
        loop = asm.ForLoop(
            "i", Var("a"), Var("b"),
            asm.AccumStmt("acc", ops.ADD, Load("x", Var("i"))))
        source = emit(vectorize(func_of(loop, params=("a", "b", "x"))))
        assert "if a < b:" in source
        assert "_np.add.reduce(x[a:b])" in source

    def test_affine_index_with_stride(self):
        index = build.plus(build.times(Literal(2), Var("i")), Var("o"))
        loop = asm.ForLoop(
            "i", Literal(0), Literal(5),
            asm.AccumStmt("acc", ops.ADD, Load("x", index)))
        source = emit(vectorize(func_of(loop, params=("x", "o"))))
        assert "x[o:9 + o:2]" in source

    def test_counter_scales_by_trip_count(self):
        body = asm.Block([
            asm.AccumStmt("acc", ops.ADD, Load("x", Var("i"))),
            asm.AccumStmt("_ops", ops.ADD, Literal(1)),
        ])
        loop = asm.ForLoop("i", Var("a"), Var("b"), body)
        source = emit(vectorize(func_of(loop, params=("a", "b", "x"),
                                        returns=("_ops",))))
        assert "_ops += b - a" in source

    def test_lazy_ops_fall_back_to_scalar_loop(self):
        guarded = build.call(ops.IFELSE, build.lt(Var("i"), Literal(3)),
                             Load("x", Var("i")), Literal(0.0))
        loop = asm.ForLoop("i", Literal(0), Literal(8),
                           asm.AccumStmt("acc", ops.ADD, guarded))
        source = emit(vectorize(func_of(loop, params=("x",))))
        assert "for i in range(0, 8):" in source

    def test_loop_carried_dependence_bails(self):
        loop = asm.ForLoop(
            "i", Literal(1), Literal(8),
            asm.AssignStmt(Load("out", Var("i")),
                           Load("out", build.minus(Var("i"),
                                                   Literal(1)))))
        source = emit(vectorize(func_of(loop, params=("out",))))
        assert "for i in range(1, 8):" in source

    def test_same_cell_read_is_allowed(self):
        loop = asm.ForLoop(
            "i", Literal(0), Literal(8),
            asm.AssignStmt(Load("out", Var("i")),
                           build.times(Load("out", Var("i")),
                                       Literal(2.0))))
        source = emit(vectorize(func_of(loop, params=("out",))))
        assert "out[0:8] = (2.0 * out[0:8])" in source

    def test_bare_loop_variable_bails(self):
        loop = asm.ForLoop(
            "i", Literal(0), Literal(8),
            asm.AccumStmt("acc", ops.ADD,
                          build.times(Var("i"), Var("i"))))
        source = emit(vectorize(func_of(loop, params=())))
        assert "for i in range(0, 8):" in source


class TestLinearParts:
    def var_free(self, expr, var="i"):
        return linear_parts(expr, var)

    def test_plain_variable(self):
        assert linear_parts(Var("i"), "i") == (1, Literal(0))

    def test_scaled_shifted(self):
        expr = build.plus(build.times(Literal(3), Var("i")), Var("o"))
        coeff, base = linear_parts(expr, "i")
        assert coeff == 3 and base == Var("o")

    def test_subtraction(self):
        expr = build.minus(Var("i"), Literal(2))
        coeff, base = linear_parts(expr, "i")
        assert coeff == 1 and base == Literal(-2)

    def test_var_free_expression(self):
        coeff, base = linear_parts(Var("q"), "i")
        assert coeff == 0 and base == Var("q")

    def test_nonlinear_is_rejected(self):
        assert linear_parts(build.times(Var("i"), Var("i")), "i") is None
        assert linear_parts(build.times(Var("i"), Var("k")), "i") is None


class TestHelpers:
    def test_can_raise_flags_loads_and_division(self):
        assert can_raise(Load("x", Literal(0)))
        assert can_raise(build.call(ops.DIV, Var("a"), Var("b")))
        assert not can_raise(build.plus(Var("a"), Literal(1)))

    def test_entry_exprs_skip_later_elif_conditions(self):
        first = build.lt(Var("a"), Var("b"))
        second = build.lt(Var("b"), Var("c"))
        stmt = asm.If([(first, asm.Raw("f()")),
                       (second, asm.Raw("g()"))])
        assert list(entry_exprs(stmt)) == [first]

    def test_pipeline_metadata(self):
        assert "vectorize" in PIPELINE[2]
        assert "vectorize" not in PIPELINE[1]
        assert DEFAULT_OPT_LEVEL == 2


class TestGoldenKernels:
    """The passes fire on real compiled kernels (the paper's shapes)."""

    def spmspv_kernel(self, **opts):
        rng = np.random.default_rng(0)
        mat = rng.random((8, 10))
        mat[rng.random((8, 10)) > 0.3] = 0.0
        vec = rng.random(10)
        vec[rng.random(10) > 0.4] = 0.0
        prog = spmspv_program(mat, vec, "walk_walk")[0]
        return fl.compile_kernel(prog, cache=False, **opts)

    def test_licm_fires_on_spmspv(self):
        kernel = self.spmspv_kernel()
        raw_lines = kernel.raw_source.splitlines()
        opt_lines = kernel.source.splitlines()

        def first_index(lines, needle):
            return next(pos for pos, line in enumerate(lines)
                        if needle in line)

        # The x-vector's position bounds are loop-invariant: lowered
        # code loads them inside the row loop, optimized code hoists
        # them above it.
        raw_for = first_index(raw_lines, "for i in range")
        opt_for = first_index(opt_lines, "for i in range")
        assert first_index(raw_lines, "pos_2[0]") > raw_for
        assert first_index(opt_lines, "pos_2[0]") < opt_for

    def test_cse_fires_on_spmspv(self):
        kernel = self.spmspv_kernel()
        # The coiteration advance re-tests `stop == stride`; CSE
        # shares the comparison through a temp.
        assert kernel.raw_source.count("== j_stride\n") \
            + kernel.raw_source.count("== j_stride:") >= 2
        assert kernel.source.count("== j_stride") \
            < kernel.raw_source.count("== j_stride")

    def test_dead_preamble_load_dropped(self):
        a = np.arange(4.0)
        A = fl.from_numpy(a, ("dense",), name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        prog = fl.forall(i, fl.increment(C[()], A[i]))
        kernel = fl.compile_kernel(prog, cache=False)
        # The scalar accumulator is reset before first read: the
        # preamble load of C_val[0] is a dead store and must go.
        assert kernel.raw_source.count("C_val[0]") == 2
        assert kernel.source.count("C_val[0]") == 1  # writeback only

    def test_dense_dot_vectorizes_to_np_dot(self):
        a = np.arange(32.0)
        A = fl.from_numpy(a, ("dense",), name="A")
        B = fl.from_numpy(a, ("dense",), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        prog = fl.forall(i, fl.increment(C[()], A[i] * B[i]))
        kernel = fl.compile_kernel(prog, cache=False)
        assert "_np.dot" in kernel.source
        assert "for" not in kernel.source
        kernel.run()
        assert C.value == pytest.approx(float(a @ a))

    def test_level_one_hoists_but_does_not_vectorize(self):
        a = np.arange(1.0, 5.0)
        b = np.arange(1.0, 4.0)
        A = fl.from_numpy(a, ("dense",), name="A")
        B = fl.from_numpy(b, ("dense",), name="B")
        C = fl.Scalar(name="C")
        i, j = fl.indices("i", "j")
        prog = fl.forall(i, fl.forall(j, fl.increment(C[()],
                                                      A[i] * B[j])))
        kernel = fl.compile_kernel(prog, cache=False, opt_level=1)
        # A[i] is invariant in the j loop: hoisted, still a loop.
        assert "val_x = val[i]" in kernel.source
        assert "for j in range" in kernel.source
        kernel.run()
        assert C.value == pytest.approx(a.sum() * b.sum())

    def test_instrumented_counts_survive_vectorization(self):
        vec = np.ones(23)
        for level in (0, 1, 2):
            X = fl.from_numpy(vec, ("dense",), name="X")
            s = fl.Scalar(name="s")
            i = fl.indices("i")
            prog = fl.forall(i, fl.increment(s[()], X[i]))
            n = fl.execute(prog, instrument=True, opt_level=level)
            assert n == 23
            assert s.value == 23.0

    def test_optimize_kernel_level_zero_is_identity(self):
        loop = asm.ForLoop("i", Literal(0), Literal(4),
                           asm.AssignStmt(Load("out", Var("i")),
                                          Literal(1.0)))
        func = func_of(loop, params=("out",))
        assert optimize_kernel(func, 0) is func
