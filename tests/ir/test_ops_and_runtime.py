"""Unit tests for the operator registry and kernel runtime helpers."""

import pytest

from repro.ir import ops
from repro.ir.ops import MISSING, Missing, Op, get_op, register_op
from repro.ir.runtime import kernel_globals, search_ge
from repro.util.errors import ReproError
from repro.util.namer import Namer, sanitize


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_op("add") is ops.ADD
        assert get_op("mul") is ops.MUL

    def test_unknown_op(self):
        with pytest.raises(ReproError):
            get_op("frobnicate")

    def test_registration_of_custom_op(self):
        xor = register_op(Op("test_xor", lambda a, b: a ^ b,
                             commutative=True))
        try:
            assert get_op("test_xor") is xor
            assert xor.fold(3, 5) == 6
        finally:
            ops.all_ops().pop("test_xor", None)

    def test_algebraic_properties(self):
        assert ops.ADD.identity == 0
        assert ops.MUL.identity == 1
        assert ops.MUL.annihilator == 0
        assert ops.AND.annihilator is False
        assert ops.OR.annihilator is True
        assert ops.MIN.identity is None


class TestFolding:
    def test_variadic_add_and_mul(self):
        assert ops.ADD.fold(1, 2, 3) == 6
        assert ops.MUL.fold(2, 3, 4) == 24

    def test_comparison_ops(self):
        assert ops.LE.fold(2, 2) is True
        assert ops.GT.fold(2, 2) is False

    def test_missing_propagates_through_arithmetic(self):
        assert ops.ADD.fold(1, MISSING) is MISSING
        assert ops.MUL.fold(MISSING, 0) is MISSING

    def test_coalesce_skips_missing(self):
        assert ops.COALESCE.fold(MISSING, 5, 7) == 5
        assert ops.COALESCE.fold(MISSING) is MISSING

    def test_missing_is_a_singleton(self):
        assert Missing() is MISSING

    def test_round_u8_clamps(self):
        assert ops.ROUND_U8.fold(300.0) == 255
        assert ops.ROUND_U8.fold(-5.0) == 0
        assert ops.ROUND_U8.fold(12.6) == 13

    def test_search_ops(self):
        idx = [2, 5, 9, 12]
        assert ops.SEARCH_GE.fold(idx, 0, 4, 6) == 2
        assert ops.SEARCH_GE.fold(idx, 0, 4, 5) == 1
        signed = [3, -6, 9]
        assert ops.SEARCH_ABS_GE.fold(signed, 0, 3, 4) == 1
        assert ops.SEARCH_ABS_GE.fold(signed, 0, 3, 7) == 2


class TestKernelGlobals:
    def test_contains_helpers(self):
        env = kernel_globals()
        for name in ("_coalesce", "_ifelse", "_round_u8", "_sqrt",
                     "search_ge", "min", "max", "abs"):
            assert name in env

    def test_fresh_namespace_each_call(self):
        first = kernel_globals()
        second = kernel_globals()
        first["extra"] = 1
        assert "extra" not in second

    def test_sqrt_helper(self):
        assert kernel_globals()["_sqrt"](9.0) == 3.0

    def test_search_ge_bounds(self):
        assert search_ge([1, 3, 5], 1, 3, 4) == 2
        assert search_ge([1, 3, 5], 0, 0, 4) == 0


class TestNamer:
    def test_fresh_names_are_unique(self):
        namer = Namer()
        names = {namer.fresh("p") for _ in range(5)}
        assert len(names) == 5

    def test_first_use_is_clean(self):
        assert Namer().fresh("stride") == "stride"

    def test_reserved_names_skipped(self):
        namer = Namer(reserved=["i"])
        assert namer.fresh("i") == "i_2"

    def test_reserve_after_creation(self):
        namer = Namer()
        namer.reserve("q")
        assert namer.fresh("q") == "q_2"

    def test_sanitize(self):
        assert sanitize("A val") == "A_val"
        assert sanitize("2x") == "v2x"
        assert sanitize("while") == "while_"
        assert sanitize("") == "v"
        assert sanitize("lvl0.pos") == "lvl0_pos"


class TestLazyIfElse:
    def test_rendered_conditional_is_lazy(self):
        """The emitted form must not evaluate the dead branch."""
        from repro.ir import Call, Literal, Load, Var
        from repro.ir.pretty import expr_source

        guarded = Call(ops.IFELSE, [
            Call(ops.GT, [Var("n"), Literal(0)]),
            Load("buf", Call(ops.SUB, [Var("n"), Literal(1)])),
            Literal(0),
        ])
        source = expr_source(guarded)
        assert source == "(buf[n - 1] if n > 0 else 0)"
        # Executing with an empty buffer and n == 0 must not raise.
        assert eval(source, {"buf": [], "n": 0}) == 0


class TestFrozenNamespace:
    def test_kernel_globals_returns_fresh_copies(self):
        first = kernel_globals()
        first["min"] = None
        assert kernel_globals()["min"] is min

    def test_numpy_is_reachable_for_vectorized_kernels(self):
        import numpy as np

        assert kernel_globals()["_np"] is np

    def test_late_registered_op_invalidates_the_snapshot(self):
        kernel_globals()  # prime the cached base namespace
        name = "late_snapshot_op"
        register_op(Op(name, lambda a: a + 41, runtime_name=name))
        try:
            env = kernel_globals()
            assert env[name](1) == 42
        finally:
            ops._REGISTRY.pop(name, None)
            register_op(Op("_bump", lambda a: a))  # refresh version
            ops._REGISTRY.pop("_bump", None)

    def test_registry_version_bumps_on_registration(self):
        before = ops.registry_version()
        register_op(Op("_version_probe", lambda a: a))
        try:
            assert ops.registry_version() == before + 1
        finally:
            ops._REGISTRY.pop("_version_probe", None)
