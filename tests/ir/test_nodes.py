"""Unit tests for scalar IR nodes."""

import pytest

from repro.ir import (
    MISSING,
    Call,
    Extent,
    Literal,
    Load,
    Var,
    as_expr,
    ops,
    substitute,
)
from repro.util.errors import ReproError


class TestLiteral:
    def test_equality_is_structural(self):
        assert Literal(3) == Literal(3)
        assert Literal(3) != Literal(4)

    def test_int_and_float_literals_differ(self):
        assert Literal(1) != Literal(1.0)

    def test_bool_and_int_literals_differ(self):
        assert Literal(True) != Literal(1)

    def test_missing_literal(self):
        lit = Literal(MISSING)
        assert lit.is_missing
        assert lit == Literal(MISSING)

    def test_hashable(self):
        assert len({Literal(1), Literal(1), Literal(2)}) == 2


class TestVar:
    def test_equality(self):
        assert Var("i") == Var("i")
        assert Var("i") != Var("j")

    def test_free_vars(self):
        assert Var("i").free_vars() == {"i"}


class TestCall:
    def test_children_and_rebuild(self):
        expr = Call(ops.ADD, [Var("a"), Literal(1)])
        assert list(expr.children()) == [Var("a"), Literal(1)]
        rebuilt = expr.rebuild([Var("b"), Literal(2)])
        assert rebuilt == Call(ops.ADD, [Var("b"), Literal(2)])

    def test_op_by_name(self):
        expr = Call("mul", [Var("a"), Var("b")])
        assert expr.op is ops.MUL

    def test_bad_op_rejected(self):
        with pytest.raises(ReproError):
            Call(42, [Literal(1)])

    def test_free_vars_recursive(self):
        expr = Call(ops.ADD, [Var("a"), Call(ops.MUL, [Var("b"), Literal(2)])])
        assert expr.free_vars() == {"a", "b"}


class TestLoad:
    def test_structure(self):
        load = Load("A_val", Var("p"))
        assert load.buffer == Var("A_val")
        assert load.free_vars() == {"A_val", "p"}

    def test_equality(self):
        assert Load("A", Var("p")) == Load("A", Var("p"))
        assert Load("A", Var("p")) != Load("A", Var("q"))


class TestAsExpr:
    def test_numbers(self):
        assert as_expr(3) == Literal(3)
        assert as_expr(2.5) == Literal(2.5)
        assert as_expr(True) == Literal(True)

    def test_string_becomes_var(self):
        assert as_expr("idx") == Var("idx")

    def test_expr_passthrough(self):
        var = Var("x")
        assert as_expr(var) is var

    def test_numpy_scalar(self):
        import numpy as np

        assert as_expr(np.int64(7)) == Literal(7)

    def test_rejects_unknown(self):
        with pytest.raises(ReproError):
            as_expr(object())


class TestSubstitute:
    def test_replaces_variable(self):
        expr = Call(ops.ADD, [Var("i"), Literal(1)])
        out = substitute(expr, {"i": Literal(5)})
        assert out == Call(ops.ADD, [Literal(5), Literal(1)])

    def test_untouched_tree_is_shared(self):
        expr = Call(ops.ADD, [Var("i"), Literal(1)])
        assert substitute(expr, {"j": Literal(5)}) is expr

    def test_substitute_inside_load(self):
        load = Load("A", Var("i"))
        out = substitute(load, {"i": Var("k")})
        assert out == Load("A", Var("k"))


class TestExtent:
    def test_static_length(self):
        assert Extent(0, 5).static_length() == 5
        assert Extent(5, 5).static_length() == 0
        assert Extent(7, 3).static_length() == 0

    def test_dynamic_length_unknown(self):
        assert Extent(Var("a"), Var("b")).static_length() is None

    def test_unit_detection_with_dynamic_bounds(self):
        start = Var("s")
        stop = Call(ops.ADD, [Var("s"), Literal(1)])
        assert Extent(start, stop).is_unit()

    def test_empty_when_bounds_equal(self):
        ext = Extent(Var("s"), Var("s"))
        assert ext.is_certainly_empty()
