"""Unit tests for the benchmark harness utilities."""

import pytest

from repro.bench.harness import Table, speedup, summarize, time_kernel


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["name", "value"])
        table.add("short", 1)
        table.add("a-much-longer-name", 123456)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "== demo =="
        assert "name" in lines[1] and "value" in lines[1]
        # All data rows align to the same column start.
        first_col_width = lines[3].index("1")
        assert lines[4].index("123456") >= first_col_width

    def test_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_float_formatting(self):
        table = Table("demo", ["v"])
        table.add(0.0)
        table.add(1234567.0)
        table.add(0.001234)
        table.add(1.5)
        cells = [row[0] for row in table.rows]
        assert cells[0] == "0"
        assert cells[1] == "1.23e+06"
        assert cells[2] == "0.00123"
        assert cells[3] == "1.500"


class TestHelpers:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_summarize(self):
        assert summarize([3, 1, 2]) == (1, 2, 3)
        assert summarize([]) == (0.0, 0.0, 0.0)
        assert summarize([7]) == (7, 7, 7)

    def test_time_kernel_returns_minimum(self):
        class FakeKernel:
            def __init__(self):
                self.calls = 0

            def run(self):
                self.calls += 1

        kernel = FakeKernel()
        elapsed = time_kernel(kernel, repeats=3)
        assert kernel.calls == 3
        assert elapsed >= 0.0

    def test_median_time_kernel_discards_warmup(self):
        from repro.bench.harness import median_time_kernel

        class FakeKernel:
            def __init__(self):
                self.calls = 0

            def run(self):
                self.calls += 1

        kernel = FakeKernel()
        elapsed = median_time_kernel(kernel, repeats=5, warmup=2)
        assert kernel.calls == 7  # 2 warmup + 5 timed
        assert elapsed >= 0.0


class TestWarmStartTable:
    def _programs(self):
        import numpy as np

        import repro.lang as fl

        def make_program():
            a = np.arange(48, dtype=float)
            A = fl.from_numpy(a, ("dense",), name="A")
            C = fl.Scalar(name="C")
            i = fl.indices("i")
            return fl.forall(i, fl.increment(C[()], A[i] * A[i]))

        return [("fig_test", "square sum", make_program, {})]

    def test_warm_store_hits_and_matches(self, tmp_path):
        from repro.bench.harness import warm_start_table
        from repro.compiler.kernel import compile_kernel, kernel_cache
        from repro.store import KernelStore

        store = KernelStore(tmp_path)
        programs = self._programs()
        for _, _, make_program, opts in programs:
            kernel_cache().clear()
            kernel = compile_kernel(make_program(), cache=False, **opts)
            store.save_artifact(kernel.artifact)
        table, payload = warm_start_table("warm start", programs, store)
        assert payload["hit_rate"] == 1.0
        assert payload["cold_compiles"] == 0
        assert payload["identical"] is True
        assert [row[5] for row in table.rows] == ["hit"]
        entry = payload["figures"]["fig_test/square sum"]
        assert entry["disk_hit"] and entry["bit_identical"]

    def test_cold_store_reports_misses(self, tmp_path):
        from repro.bench.harness import warm_start_table
        from repro.store import KernelStore

        store = KernelStore(tmp_path)
        table, payload = warm_start_table("cold start",
                                          self._programs(), store)
        # An unwarmed store misses (and is warmed behind); outputs
        # still match because the fallback is a real compile.
        assert payload["hit_rate"] == 0.0
        assert payload["cold_compiles"] == 1
        assert payload["identical"] is True
        assert store.stats()["entries"] == 1


class TestTunedRows:
    def _make_program(self):
        import numpy as np

        import repro.lang as fl

        rng = np.random.default_rng(3)
        a = np.zeros(64)
        a[rng.choice(64, 7, replace=False)] = rng.random(7) + 0.1
        b = np.zeros(64)
        b[8:40] = rng.random(32) + 0.1
        A = fl.from_numpy(a, ("sparse",), name="A")
        B = fl.from_numpy(b, ("band",), name="B")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        return fl.forall(i, fl.increment(C[()], A[i] * B[i]))

    def test_optimization_table_tuned_row(self, tmp_path):
        from repro.bench.harness import optimization_table
        from repro.compiler.kernel import kernel_cache
        from repro.store import KernelStore, using_store
        from repro.tune import clear_tuning_memo, tune_program

        store = KernelStore(tmp_path)
        try:
            with using_store(store):
                result = tune_program(
                    self._make_program, opt_levels=(1, 2),
                    backends=("python",), repeats=1, warmup=0)
                assert result["persisted"]
                table, payload = optimization_table(
                    "tuned vs default", self._make_program,
                    repeats=1, tune="apply")
            assert payload["tuned"]["applied"] is True
            assert payload["tuned"]["max_abs_diff"] == 0.0
            assert payload["tuned"]["run_s"] >= 0.0
            assert any(row[0] == "tuned" for row in table.rows)
        finally:
            kernel_cache().clear()
            clear_tuning_memo()

    def test_tuned_row_without_table_is_labeled(self, tmp_path):
        from repro.bench.harness import optimization_table
        from repro.compiler.kernel import kernel_cache
        from repro.store import KernelStore, using_store
        from repro.tune import clear_tuning_memo

        try:
            with using_store(KernelStore(tmp_path)):
                table, payload = optimization_table(
                    "no table yet", self._make_program,
                    repeats=1, tune="apply")
            # No winner on record: the row measures the default
            # compile and says so instead of faking a tuning.
            assert payload["tuned"]["applied"] is False
            assert any(row[0] == "tuned (no table)"
                       for row in table.rows)
        finally:
            kernel_cache().clear()
            clear_tuning_memo()
