"""Unit tests for the benchmark harness utilities."""

import pytest

from repro.bench.harness import Table, speedup, summarize, time_kernel


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["name", "value"])
        table.add("short", 1)
        table.add("a-much-longer-name", 123456)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "== demo =="
        assert "name" in lines[1] and "value" in lines[1]
        # All data rows align to the same column start.
        first_col_width = lines[3].index("1")
        assert lines[4].index("123456") >= first_col_width

    def test_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_float_formatting(self):
        table = Table("demo", ["v"])
        table.add(0.0)
        table.add(1234567.0)
        table.add(0.001234)
        table.add(1.5)
        cells = [row[0] for row in table.rows]
        assert cells[0] == "0"
        assert cells[1] == "1.23e+06"
        assert cells[2] == "0.00123"
        assert cells[3] == "1.500"


class TestHelpers:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_summarize(self):
        assert summarize([3, 1, 2]) == (1, 2, 3)
        assert summarize([]) == (0.0, 0.0, 0.0)
        assert summarize([7]) == (7, 7, 7)

    def test_time_kernel_returns_minimum(self):
        class FakeKernel:
            def __init__(self):
                self.calls = 0

            def run(self):
                self.calls += 1

        kernel = FakeKernel()
        elapsed = time_kernel(kernel, repeats=3)
        assert kernel.calls == 3
        assert elapsed >= 0.0
