"""Unit tests for the benchmark harness utilities."""

import pytest

from repro.bench.harness import Table, speedup, summarize, time_kernel


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["name", "value"])
        table.add("short", 1)
        table.add("a-much-longer-name", 123456)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "== demo =="
        assert "name" in lines[1] and "value" in lines[1]
        # All data rows align to the same column start.
        first_col_width = lines[3].index("1")
        assert lines[4].index("123456") >= first_col_width

    def test_arity_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_float_formatting(self):
        table = Table("demo", ["v"])
        table.add(0.0)
        table.add(1234567.0)
        table.add(0.001234)
        table.add(1.5)
        cells = [row[0] for row in table.rows]
        assert cells[0] == "0"
        assert cells[1] == "1.23e+06"
        assert cells[2] == "0.00123"
        assert cells[3] == "1.500"


class TestHelpers:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_summarize(self):
        assert summarize([3, 1, 2]) == (1, 2, 3)
        assert summarize([]) == (0.0, 0.0, 0.0)
        assert summarize([7]) == (7, 7, 7)

    def test_time_kernel_returns_minimum(self):
        class FakeKernel:
            def __init__(self):
                self.calls = 0

            def run(self):
                self.calls += 1

        kernel = FakeKernel()
        elapsed = time_kernel(kernel, repeats=3)
        assert kernel.calls == 3
        assert elapsed >= 0.0


class TestWarmStartTable:
    def _programs(self):
        import numpy as np

        import repro.lang as fl

        def make_program():
            a = np.arange(48, dtype=float)
            A = fl.from_numpy(a, ("dense",), name="A")
            C = fl.Scalar(name="C")
            i = fl.indices("i")
            return fl.forall(i, fl.increment(C[()], A[i] * A[i]))

        return [("fig_test", "square sum", make_program, {})]

    def test_warm_store_hits_and_matches(self, tmp_path):
        from repro.bench.harness import warm_start_table
        from repro.compiler.kernel import compile_kernel, kernel_cache
        from repro.store import KernelStore

        store = KernelStore(tmp_path)
        programs = self._programs()
        for _, _, make_program, opts in programs:
            kernel_cache().clear()
            kernel = compile_kernel(make_program(), cache=False, **opts)
            store.save_artifact(kernel.artifact)
        table, payload = warm_start_table("warm start", programs, store)
        assert payload["hit_rate"] == 1.0
        assert payload["cold_compiles"] == 0
        assert payload["identical"] is True
        assert [row[5] for row in table.rows] == ["hit"]
        entry = payload["figures"]["fig_test/square sum"]
        assert entry["disk_hit"] and entry["bit_identical"]

    def test_cold_store_reports_misses(self, tmp_path):
        from repro.bench.harness import warm_start_table
        from repro.store import KernelStore

        store = KernelStore(tmp_path)
        table, payload = warm_start_table("cold start",
                                          self._programs(), store)
        # An unwarmed store misses (and is warmed behind); outputs
        # still match because the fallback is a real compile.
        assert payload["hit_rate"] == 0.0
        assert payload["cold_compiles"] == 1
        assert payload["identical"] is True
        assert store.stats()["entries"] == 1
