"""Structure tests: each format unfurls into the Figure 3 looplet nest.

These assert the *shape* of the looplet trees the formats produce —
the code in Figure 3's right-hand column — independent of lowering.
"""

import numpy as np
import pytest

import repro.lang as fl
from repro.compiler.context import Context
from repro.formats.level import FiberSlice, FillFiber
from repro.ir import Literal
from repro.looplets import (
    Jumper,
    Lookup,
    Pipeline,
    Run,
    Spike,
    Stepper,
    Switch,
)


@pytest.fixture
def ctx():
    return Context()


def unfurl_vector(vec, fmt, ctx, proto=None):
    tensor = fl.from_numpy(np.asarray(vec, dtype=float), (fmt,), name="T")
    return tensor.levels[0].unfurl(ctx, Literal(0), proto)


class TestSparseList:
    """Figure 3d: Pipeline(Phase(Stepper(Spike)), Phase(Run(0)))."""

    def test_walk_structure(self, ctx):
        nest = unfurl_vector([0, 1, 0, 2, 0], "sparse", ctx)
        assert isinstance(nest, Pipeline)
        stored, trailing = nest.phases
        assert isinstance(stored.body, Stepper)
        assert isinstance(trailing.body, Run)
        spike = stored.body.body
        assert isinstance(spike, Spike)
        assert isinstance(spike.body, Literal)  # fill payload
        assert isinstance(spike.tail, FiberSlice)

    def test_gallop_structure(self, ctx):
        """Figure 6a: a Jumper whose body switches between an exact
        Spike and a fallback Stepper."""
        nest = unfurl_vector([0, 1, 0, 2, 0], "sparse", ctx, "gallop")
        stored = nest.phases[0].body
        assert isinstance(stored, Jumper)
        from repro.ir.nodes import Extent, Var

        body = stored.body(ctx, Extent(Var("a"), Var("b")))
        assert isinstance(body, Switch)
        exact, fallback = body.cases
        assert isinstance(exact.body, Spike)
        assert isinstance(fallback.body, Stepper)


class TestBand:
    """Figure 3f: Pipeline(Run(0), Lookup, Run(0))."""

    def test_structure(self, ctx):
        nest = unfurl_vector([0, 0, 1, 2, 3, 0], "band", ctx)
        assert isinstance(nest, Pipeline)
        assert len(nest.phases) == 3
        assert isinstance(nest.phases[0].body, Run)
        assert isinstance(nest.phases[1].body, Lookup)
        assert isinstance(nest.phases[2].body, Run)
        assert nest.phases[2].stride is None


class TestVBL:
    """Figure 3b: Stepper over Pipeline(Run(0), Lookup) blocks."""

    def test_structure(self, ctx):
        nest = unfurl_vector([0, 1, 2, 0, 0, 3, 4, 0], "vbl", ctx)
        assert isinstance(nest, Pipeline)
        stepper = nest.phases[0].body
        assert isinstance(stepper, Stepper)
        block = stepper.body
        assert isinstance(block, Pipeline)
        assert isinstance(block.phases[0].body, Run)
        assert isinstance(block.phases[1].body, Lookup)


class TestRunLength:
    """Figure 3g: a bare Stepper of Runs."""

    def test_structure(self, ctx):
        nest = unfurl_vector([3, 3, 1, 1, 2], "rle", ctx)
        assert isinstance(nest, Stepper)
        assert isinstance(nest.body, Run)
        assert isinstance(nest.body.body, FiberSlice)


class TestPackBits:
    """Figure 3h: Stepper over Switch(Run | Lookup)."""

    def test_structure(self, ctx):
        nest = unfurl_vector([3, 3, 3, 7, 1, 2, 2, 2], "packbits", ctx)
        assert isinstance(nest, Stepper)
        switch = nest.body
        assert isinstance(switch, Switch)
        run_case, literal_case = switch.cases
        assert isinstance(run_case.body, Run)
        assert isinstance(literal_case.body, Lookup)
        assert literal_case.cond == Literal(True)


class TestBitmap:
    """Figure 6c: Lookup of per-element Switch(tbl ? val : 0)."""

    def test_structure(self, ctx):
        nest = unfurl_vector([0, 1, 0, 2], "bitmap", ctx)
        assert isinstance(nest, Lookup)
        element = nest.body(Literal(1))
        assert isinstance(element, Switch)
        hit, miss = element.cases
        assert isinstance(hit.body, FiberSlice)
        assert miss.body == Literal(0.0)


class TestRagged:
    """Figure 3e: Pipeline(Lookup over the prefix, Run(0))."""

    def test_structure(self, ctx):
        nest = unfurl_vector([1, 2, 3, 0, 0], "ragged", ctx)
        assert isinstance(nest, Pipeline)
        assert isinstance(nest.phases[0].body, Lookup)
        assert isinstance(nest.phases[1].body, Run)


class TestTriangularAndSymmetric:
    """Figures 3a and 3c."""

    def test_triangular_row(self, ctx):
        tensor = fl.triangular_from_numpy(np.tril(np.ones((4, 4))))
        nest = tensor.levels[1].unfurl(ctx, Literal(2))
        assert isinstance(nest, Pipeline)
        lower, upper = nest.phases
        assert isinstance(lower.body, Lookup)
        assert isinstance(upper.body, Run)

    def test_symmetric_row(self, ctx):
        sym = np.ones((4, 4))
        tensor = fl.symmetric_from_numpy(sym)
        nest = tensor.levels[1].unfurl(ctx, Literal(2))
        assert isinstance(nest, Pipeline)
        lower, upper = nest.phases
        assert isinstance(lower.body, Lookup)
        assert isinstance(upper.body, Lookup)


class TestDense:
    def test_lookup_structure(self, ctx):
        nest = unfurl_vector([1, 2, 3], "dense", ctx)
        assert isinstance(nest, Lookup)
        payload = nest.body(Literal(2))
        assert isinstance(payload, FiberSlice)


class TestFillFiber:
    def test_unfurls_to_run_of_fill(self, ctx):
        mat = np.zeros((3, 4))
        mat[0, 1] = 1.0
        tensor = fl.from_numpy(mat, ("sparse", "sparse"), name="M")
        fiber = FillFiber(tensor.levels[1])
        nest = fiber.unfurl(ctx)
        assert isinstance(nest, Run)
        assert nest.body == Literal(0.0)


class TestProtocolValidation:
    def test_unsupported_protocol_raises(self, ctx):
        from repro.util.errors import ProtocolError

        tensor = fl.from_numpy(np.zeros(4), ("rle",), name="T")
        with pytest.raises(ProtocolError):
            tensor.levels[0].unfurl(ctx, Literal(0), "gallop")

    def test_follow_maps_to_walk(self, ctx):
        tensor = fl.from_numpy(np.zeros(4), ("sparse",), name="T")
        nest = tensor.levels[0].unfurl(ctx, Literal(0), "follow")
        assert isinstance(nest, Pipeline)


class TestVBLGallop:
    def test_gallop_structure(self, ctx):
        """VBL leader protocol: a Jumper over blocks, exact case is the
        block pipeline, fallback is the walking stepper."""
        nest = unfurl_vector([0, 1, 2, 0, 0, 3, 0], "vbl", ctx, "gallop")
        stored = nest.phases[0].body
        assert isinstance(stored, Jumper)
        from repro.ir.nodes import Extent, Var

        body = stored.body(ctx, Extent(Var("a"), Var("b")))
        assert isinstance(body, Switch)
        exact, fallback = body.cases
        assert isinstance(exact.body, Pipeline)
        assert isinstance(fallback.body, Stepper)
