"""Format round-trip tests: from_numpy -> to_numpy is the identity."""

import numpy as np
import pytest

from repro.tensors import (
    from_numpy,
    symmetric_from_numpy,
    triangular_from_numpy,
)
from repro.util.errors import FormatError

VECTOR_FORMATS = ["dense", "sparse", "band", "vbl", "rle", "packbits",
                  "bitmap", "ragged"]
MATRIX_INNER_FORMATS = VECTOR_FORMATS


def example_vectors():
    rng = np.random.default_rng(0)
    dense = rng.integers(1, 5, size=11).astype(float)
    sparse = np.array([0, 1.9, 0, 3.0, 0, 0, 2.7, 0, 5.5, 0, 0])
    banded = np.array([0, 0, 0, 3.7, 4.7, 9.2, 1.5, 8.7, 0, 0, 0])
    clustered = np.array([0, 0, 2.7, 5.0, 0.9, 0, 0, 1.4, 2.3, 0, 0])
    runs = np.array([3, 3, 3, 1, 1, 1, 2, 2, 5, 2, 4], dtype=float)
    empty = np.zeros(7)
    single = np.array([0, 0, 9.0, 0])
    prefix = np.array([5.2, 4.6, 4.3, 0, 0, 0])
    return {
        "dense_values": dense,
        "scattered": sparse,
        "banded": banded,
        "clustered": clustered,
        "runs": runs,
        "all_fill": empty,
        "single_nonzero": single,
        "prefix_then_fill": prefix,
    }


@pytest.mark.parametrize("fmt", VECTOR_FORMATS)
@pytest.mark.parametrize("case", sorted(example_vectors()))
def test_vector_roundtrip(fmt, case):
    vec = example_vectors()[case]
    tensor = from_numpy(vec, (fmt,))
    np.testing.assert_array_equal(tensor.to_numpy(), vec)


@pytest.mark.parametrize("fmt", MATRIX_INNER_FORMATS)
def test_matrix_roundtrip_dense_rows(fmt):
    rng = np.random.default_rng(1)
    arr = rng.random((7, 9))
    arr[arr < 0.6] = 0.0
    tensor = from_numpy(arr, ("dense", fmt))
    np.testing.assert_array_equal(tensor.to_numpy(), arr)


def test_sparse_outer_mode():
    arr = np.zeros((6, 4))
    arr[1] = [1, 0, 2, 0]
    arr[4] = [0, 0, 0, 5]
    tensor = from_numpy(arr, ("sparse", "sparse"))
    np.testing.assert_array_equal(tensor.to_numpy(), arr)


def test_three_mode_tensor():
    rng = np.random.default_rng(2)
    arr = rng.random((3, 4, 5))
    arr[arr < 0.5] = 0.0
    tensor = from_numpy(arr, ("dense", "sparse", "sparse"))
    np.testing.assert_array_equal(tensor.to_numpy(), arr)


def test_nonzero_fill():
    arr = np.full(9, 7.0)
    arr[3] = 1.0
    tensor = from_numpy(arr, ("sparse",), fill=7.0)
    np.testing.assert_array_equal(tensor.to_numpy(), arr)
    assert tensor.fill == 7.0


def test_triangular_roundtrip():
    rng = np.random.default_rng(3)
    arr = np.tril(rng.random((6, 6)))
    tensor = triangular_from_numpy(arr)
    np.testing.assert_array_equal(tensor.to_numpy(), arr)


def test_symmetric_roundtrip():
    rng = np.random.default_rng(4)
    half = rng.random((6, 6))
    arr = half + half.T
    tensor = symmetric_from_numpy(arr)
    np.testing.assert_allclose(tensor.to_numpy(), arr)


def test_symmetric_rejects_asymmetric():
    with pytest.raises(FormatError):
        symmetric_from_numpy(np.array([[1.0, 2.0], [3.0, 4.0]]))


def test_scalar_tensor():
    tensor = from_numpy(np.array(4.5))
    assert tensor.ndim == 0
    assert tensor.to_numpy() == 4.5


def test_format_count_mismatch():
    with pytest.raises(FormatError):
        from_numpy(np.zeros((3, 3)), ("dense",))


def test_unknown_format():
    with pytest.raises(FormatError):
        from_numpy(np.zeros(3), ("mystery",))


def test_rle_must_be_innermost():
    with pytest.raises(FormatError):
        from_numpy(np.zeros((3, 3)), ("rle", "dense"))


def test_uint8_dtype_preserved():
    arr = np.array([1, 1, 1, 5, 5, 0], dtype=np.uint8)
    tensor = from_numpy(arr, ("rle",))
    out = tensor.to_numpy()
    assert out.dtype == np.uint8
    np.testing.assert_array_equal(out, arr)
