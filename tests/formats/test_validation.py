"""Format construction validation: malformed level data must be
rejected loudly at build time, not misread at kernel time."""

import numpy as np
import pytest

from repro.formats import (
    BitmapLevel,
    DenseLevel,
    ElementLevel,
    PackBitsLevel,
    RaggedLevel,
    RunLengthLevel,
    SparseBandLevel,
    SparseListLevel,
    SparseVBLLevel,
    SymmetricLevel,
    TriangularLevel,
)
from repro.tensors import Scalar, Tensor
from repro.util.errors import FormatError


def element(n=8, fill=0.0):
    return ElementLevel(np.arange(float(n)), fill_value=fill)


class TestElement:
    def test_flat_values_required(self):
        with pytest.raises(FormatError):
            ElementLevel(np.zeros((2, 2)))

    def test_fill_property(self):
        level = ElementLevel(np.zeros(3), fill_value=7.0)
        assert level.fill == 7.0


class TestSparseList:
    def test_pos_must_end_at_nnz(self):
        with pytest.raises(FormatError):
            SparseListLevel(5, element(3), pos=[0, 2], idx=[1, 3, 4])

    def test_indices_must_increase(self):
        with pytest.raises(FormatError):
            SparseListLevel(5, element(2), pos=[0, 2], idx=[3, 1])

    def test_indices_within_shape(self):
        with pytest.raises(FormatError):
            SparseListLevel(5, element(1), pos=[0, 1], idx=[9])

    def test_duplicates_rejected(self):
        with pytest.raises(FormatError):
            SparseListLevel(5, element(2), pos=[0, 2], idx=[2, 2])


class TestBand:
    def test_one_start_per_fiber(self):
        with pytest.raises(FormatError):
            SparseBandLevel(6, element(3), pos=[0, 3], lo=[1, 2])

    def test_band_within_bounds(self):
        with pytest.raises(FormatError):
            SparseBandLevel(4, element(3), pos=[0, 3], lo=[2])


class TestVBL:
    def test_ofs_needs_sentinel(self):
        with pytest.raises(FormatError):
            SparseVBLLevel(6, element(2), pos=[0, 1], end=[3], ofs=[0])

    def test_block_width_positive(self):
        with pytest.raises(FormatError):
            SparseVBLLevel(6, element(2), pos=[0, 1], end=[3],
                           ofs=[0, 0])

    def test_block_within_bounds(self):
        with pytest.raises(FormatError):
            SparseVBLLevel(4, element(2), pos=[0, 1], end=[6],
                           ofs=[0, 2])


class TestRunLength:
    def test_runs_must_tile_dimension(self):
        with pytest.raises(FormatError):
            RunLengthLevel(6, element(2), pos=[0, 2], right=[2, 5])

    def test_runs_must_increase(self):
        with pytest.raises(FormatError):
            RunLengthLevel(6, element(3), pos=[0, 3], right=[4, 2, 6])


class TestPackBits:
    def test_groups_must_tile(self):
        with pytest.raises(FormatError):
            PackBitsLevel(8, element(2), pos=[0, 1], idx=[5],
                          vof=[0, 1])

    def test_vof_sentinel(self):
        with pytest.raises(FormatError):
            PackBitsLevel(8, element(2), pos=[0, 1], idx=[8], vof=[0])


class TestBitmapAndRagged:
    def test_tbl_flat(self):
        with pytest.raises(FormatError):
            BitmapLevel(4, element(8), tbl=np.zeros((2, 4), dtype=bool))

    def test_tbl_multiple_of_shape(self):
        with pytest.raises(FormatError):
            BitmapLevel(3, element(4), tbl=np.zeros(4, dtype=bool))

    def test_ragged_width_bounds(self):
        with pytest.raises(FormatError):
            RaggedLevel(3, element(5), pos=[0, 5])


class TestPacked:
    def test_triangular_needs_packed_count(self):
        with pytest.raises(FormatError):
            TriangularLevel(4, element(9))  # needs 10

    def test_symmetric_needs_packed_count(self):
        with pytest.raises(FormatError):
            SymmetricLevel(4, element(11))


class TestTensorAssembly:
    def test_levels_must_chain(self):
        inner = element(4)
        orphan = DenseLevel(4, element(4))
        with pytest.raises(FormatError):
            Tensor([orphan], inner)

    def test_must_end_in_element(self):
        with pytest.raises(FormatError):
            Tensor([], DenseLevel(4, element(4)))

    def test_scalar_helpers(self):
        scalar = Scalar(2.5, name="s")
        assert scalar.value == 2.5
        scalar.set(7.0)
        assert scalar.value == 7.0
        assert scalar.ndim == 0
        assert scalar.shape == ()

    def test_tensor_repr_mentions_layout(self):
        leaf = element(4)
        tensor = Tensor([DenseLevel(4, leaf)], leaf, name="T")
        assert "Dense" in repr(tensor)

    def test_dimension_error_on_wrong_arity(self):
        import repro.lang as fl
        from repro.util.errors import DimensionError

        tensor = fl.from_numpy(np.zeros((2, 3)), ("dense", "dense"))
        with pytest.raises(DimensionError):
            tensor[fl.indices("i")]
