"""Protocol exploration: one SpMSpV kernel, five iteration strategies.

The same program — ``y[i] += A[i,j] * x[j]`` — compiled under different
access protocols and formats (Figure 7 of the paper):

* walk/walk       — the classic two-finger merge
* gallop A        — A leads, x fast-forwards
* gallop x        — x leads, A seeks (big wins when x is very sparse)
* gallop both     — mutual lookahead
* VBL             — A stored as variable-width dense blocks

Run:  python examples/spmspv_protocols.py
"""

import numpy as np

import repro.lang as fl
from repro.bench.harness import Table
from repro.workloads import matrices


def build(mat, vec, proto_a, proto_x, fmt=("dense", "sparse")):
    A = fl.from_numpy(mat, fmt, name="A")
    x = fl.from_numpy(vec, ("sparse",), name="x")
    y = fl.zeros(mat.shape[0], name="y")
    i, j = fl.indices("i", "j")
    program = fl.forall(i, fl.forall(j, fl.increment(
        y[i], fl.access(A, i, proto_a(j)) * fl.access(x, proto_x(j)))))
    return fl.compile_kernel(program, instrument=True), y


def main():
    n = 200
    mat = matrices.clustered_matrix(n, n, 4, 14, seed=1)
    vec = matrices.sparse_vector(n, count=8, seed=2)
    expected = mat @ vec

    strategies = {
        "walk / walk": (fl.walk, fl.walk, ("dense", "sparse")),
        "gallop A / walk x": (fl.gallop, fl.walk, ("dense", "sparse")),
        "walk A / gallop x": (fl.walk, fl.gallop, ("dense", "sparse")),
        "gallop / gallop": (fl.gallop, fl.gallop, ("dense", "sparse")),
        "VBL walk": (fl.walk, fl.walk, ("dense", "vbl")),
    }

    table = Table("SpMSpV strategies (clustered 200x200, nnz(x)=8)",
                  ["strategy", "work (ops)"])
    for label, (proto_a, proto_x, fmt) in strategies.items():
        kernel, y = build(mat, vec, proto_a, proto_x, fmt)
        ops = kernel.run()
        assert np.allclose(y.to_numpy(), expected)
        table.add(label, ops)
    table.show()
    print("\nEvery strategy computes the same y; only the work differs.")


if __name__ == "__main__":
    main()
