"""Quickstart: compile and run a structured dot product.

This is the paper's Figure 1 in ~20 lines: a scattered sparse list
coiterated with a contiguous band.  The compiler merges the formats'
looplet nests into one loop nest that skips to the band and randomly
accesses it — print the kernel source to watch it happen.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.lang as fl


def main():
    # The vectors from the paper's Figure 1c.
    a = np.array([0, 1.9, 0, 3.0, 0, 0, 2.7, 0, 5.5, 0, 0])
    b = np.array([0, 0, 0, 3.7, 4.7, 9.2, 1.5, 8.7, 0, 0, 0])

    # Store A as a sorted list of nonzeros, B as a single band.
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    C = fl.Scalar(name="C")

    # The kernel: C[] += A[i] * B[i].
    i = fl.indices("i")
    program = fl.forall(i, fl.increment(C[()], A[i] * B[i]))

    kernel = fl.compile_kernel(program)
    print("--- emitted kernel " + "-" * 50)
    print(kernel.source)

    kernel.run()
    print("dot product: %.2f (numpy says %.2f)" % (C.value, a @ b))

    # Kernels are reusable; mutate the stored values and rerun.
    A.element.val[:] = A.element.val * 2
    kernel.run()
    print("after doubling A's stored values: %.2f" % C.value)


if __name__ == "__main__":
    main()
