"""Computing on compressed images: alpha blending over RLE data.

The paper's Figure 10 kernel: ``A[i,j] = round_u8(alpha*B + beta*C)``.
With run-length-encoded inputs and an RLE-assembled output, the blend
touches each *run pair* once — direct computation on the compressed
representation, never decompressing to pixels.

Run:  python examples/image_blending.py
"""

import numpy as np

import repro.lang as fl
from repro.baselines import dense_ref
from repro.tensors.output import RunOutput
from repro.workloads import images


def blend_rle(img_b, img_c, alpha, beta):
    n, m = img_b.shape
    B = fl.from_numpy(img_b, ("dense", "rle"), name="B", fill=0)
    C = fl.from_numpy(img_c, ("dense", "rle"), name="C", fill=0)
    A = RunOutput((n, m), fill=0, dtype=np.uint8, name="A")
    i, j = fl.indices("i", "j")
    program = fl.forall(i, fl.forall(j, fl.store(A[i, j], fl.call(
        fl.ops.ROUND_U8, alpha * B[i, j] + beta * C[i, j]))))
    kernel = fl.compile_kernel(program, instrument=True)
    ops = kernel.run()
    return A, ops


def main():
    alpha, beta = 0.4, 0.6
    img_b = images.digit_like(28, seed=11)
    img_c = images.digit_like(28, seed=42)

    blended, ops = blend_rle(img_b, img_c, alpha, beta)
    expected = dense_ref.alpha_blend_numpy(img_b, img_c, alpha, beta)
    result = blended.to_numpy()
    assert np.array_equal(result, expected)

    pixels = img_b.size
    print("blended %d pixels with %d run-pair operations (%.1fx less "
          "work than per-pixel)" % (pixels, ops, pixels / ops))
    print("output stored as %d runs" % blended.run_count())

    scale = " .:-=+*#%@"
    for row in result[::2]:
        line = "".join(scale[min(int(v) * len(scale) // 256,
                                 len(scale) - 1)]
                       for v in row)
        print(line)


if __name__ == "__main__":
    main()
