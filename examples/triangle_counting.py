"""Triangle counting with galloping intersections (Figure 8).

``C[] += A[i,j] && A[j,k] && A[k,i]`` on a power-law graph.  The
innermost loop intersects two adjacency rows; switching its protocol
from walking to galloping turns long-vs-short intersections into
logarithmic skips.

Run:  python examples/triangle_counting.py
"""

from repro.baselines import twofinger
from repro.bench.harness import Table
from repro.bench.kernels import triangle_count
from repro.workloads import graphs


def main():
    adj = graphs.hub_adjacency(140, hubs=3, p=0.02, seed=9)
    expected = graphs.triangle_count_reference(adj)

    table = Table("Triangle counting on a hub graph (140 vertices)",
                  ["strategy", "triangles (x6)", "work (ops)"])

    pos, idx = graphs.adjacency_to_csr(adj)
    count, steps = twofinger.triangle_count_merge(pos, idx, adj.shape[0])
    table.add("two-finger merge (TACO model)", count, steps)

    for protocol in ("walk", "gallop"):
        kernel, C = triangle_count(adj, protocol, instrument=True)
        ops = kernel.run()
        assert C.value == expected
        table.add("looplets " + protocol, int(C.value), ops)

    table.show()
    print("\nEach triangle is counted 6 times (ordered vertex triples),"
          "\nexactly as in the paper's kernel.")


if __name__ == "__main__":
    main()
