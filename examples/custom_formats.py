"""Extending the compiler with user-defined looplet formats.

Section 4 of the paper: any array abstraction can join the framework by
expressing its structure as looplets.  Three demonstrations:

1. a function-defined array (no storage at all),
2. a triangular *mask* built from runs — multiplying by it erases the
   loop over the excluded region at compile time,
3. the mask protocol (`one_hot`) turning a scatter into structured
   sequential iteration.

Run:  python examples/custom_formats.py
"""

import numpy as np

import repro.lang as fl
from repro.formats.custom import LoopletTensor
from repro.ir import Literal, build
from repro.looplets import Lookup, Phase, Pipeline, Run
from repro.modifiers import one_hot


def function_array(n):
    """The paper's f(i) example: values computed, never stored."""
    return LoopletTensor(
        n, lambda ctx, pos: Lookup(lambda j: build.times(j, j)),
        name="squares")


def prefix_mask(n, cutoff):
    """1.0 below the cutoff, 0.0 after — as runs, not data."""
    return LoopletTensor(n, lambda ctx, pos: Pipeline([
        Phase(Run(Literal(1.0)), stride=Literal(cutoff)),
        Phase(Run(Literal(0.0))),
    ]), name="mask%d" % cutoff)


def main():
    n = 1000
    rng = np.random.default_rng(0)
    data = rng.random(n)
    D = fl.from_numpy(data, ("dense",), name="D")
    i = fl.indices("i")

    # 1. Sum of i^2 * D[i] with a virtual array.
    squares = function_array(n)
    C = fl.Scalar(name="C")
    fl.execute(fl.forall(i, fl.increment(C[()], squares[i] * D[i])))
    expected = sum(k * k * data[k] for k in range(n))
    print("sum i^2 D[i]          = %.3f (expected %.3f)"
          % (C.value, expected))

    # 2. Masked sum: the zero region never appears in the emitted code.
    mask = prefix_mask(n, 100)
    S = fl.Scalar(name="S")
    kernel = fl.compile_kernel(
        fl.forall(i, fl.increment(S[()], mask[i] * D[i])),
        instrument=True)
    work = kernel.run()
    print("masked sum (first 100) = %.3f with %d ops — the other %d "
          "iterations were erased at compile time"
          % (S.value, work, n - work))
    assert abs(S.value - data[:100].sum()) < 1e-9

    # 3. Scatter via the mask protocol: A[k] = D[(7*k) % n].
    A = fl.zeros(8, name="A")
    k, j = fl.indices("k", "j")
    gather_pos = fl.call(fl.ops.MOD, 7 * k, n)
    hot = one_hot(n, gather_pos, name="hot")
    prog = fl.forall(k, fl.forall(j, fl.sieve(hot[j],
                                              fl.store(A[k], D[j]))),
                     ext=(0, 8))
    scatter_kernel = fl.compile_kernel(prog, instrument=True)
    scatter_work = scatter_kernel.run()
    expected_gather = np.array([data[(7 * kk) % n] for kk in range(8)])
    assert np.allclose(A.to_numpy(), expected_gather)
    print("gather of 8 elements from %d candidates took %d ops"
          % (n, scatter_work))


if __name__ == "__main__":
    main()
