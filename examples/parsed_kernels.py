"""Writing kernels as text: the CIN parser front end.

Every kernel in the other examples can be written the way the paper
prints them.  The parser understands foralls (with optional extents),
protocol annotations (``::gallop``), index modifiers (``permit``,
``offset``, ``window``), reductions, comparisons and scalar
parameters.

Run:  python examples/parsed_kernels.py
"""

import numpy as np

import repro.lang as fl
from repro.cin.parser import parse
from repro.workloads import matrices


def main():
    n = 60
    mat = matrices.clustered_matrix(n, n, 3, 8, seed=1)
    vec = matrices.sparse_vector(n, count=6, seed=2)

    A = fl.from_numpy(mat, ("dense", "sparse"), name="A")
    x = fl.from_numpy(vec, ("sparse",), name="x")
    y = fl.zeros(n, name="y")
    tensors = {"A": A, "x": x, "y": y}

    # SpMSpV with a galloping vector.
    prog = parse("forall i, j: y[i] += A[i, j] * x[j::gallop]", tensors)
    fl.execute(prog)
    assert np.allclose(y.to_numpy(), mat @ vec)
    print("spmspv:        y == A @ x")

    # Row maxima via a reduction operator.
    m = fl.zeros(n, name="m")
    prog = parse("forall i, j: m[i] max= A[i, j]", {"A": A, "m": m})
    fl.execute(prog)
    assert np.allclose(m.to_numpy(), mat.max(axis=1))
    print("row maxima:    m[i] == max_j A[i, j]")

    # Shifted correlation with a scalar parameter and padding.
    a = matrices.sparse_vector(n, density=0.3, seed=3)
    Av = fl.from_numpy(a, ("sparse",), name="Av")
    C = fl.Scalar(name="C")
    prog = parse(
        "forall i: C[] += scale * coalesce(Av[permit(offset(i, 3))], 0) "
        "* Av[i]",
        {"Av": Av, "C": C}, scalars={"scale": 0.5})
    fl.execute(prog)
    expected = 0.5 * sum(a[k - 3] * a[k] for k in range(3, n))
    assert abs(C.value - expected) < 1e-9
    print("correlation:   C == 0.5 * sum A[i-3] A[i]")

    # Counting entries above a threshold in a window.
    count = fl.Scalar(name="count")
    prog = parse(
        "forall k: count[] += (Av[window(k, 10, 40)] > 0) && 1",
        {"Av": Av, "count": count})
    fl.execute(prog)
    assert count.value == np.count_nonzero(a[10:40] > 0)
    print("windowed scan: count == nnz(A[10:40])")


if __name__ == "__main__":
    main()
