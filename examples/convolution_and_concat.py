"""Index modifiers: convolution and concatenation over sparse inputs.

Section 8 of the paper builds new kernels from three primitives —
``offset``, ``window``, and ``permit`` (out-of-bounds reads become
``missing``, collapsed by ``coalesce``).  Neither kernel needs any new
compiler support; the modifiers rewrite the looplet nests.

Run:  python examples/convolution_and_concat.py
"""

import numpy as np

import repro.lang as fl
from repro.workloads import matrices


def concatenate(a, b):
    """C = [A; B] via permit/offset (the paper's concat one-liner)."""
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("sparse",), name="B")
    C = fl.zeros(len(a) + len(b), name="C")
    i = fl.indices("i")
    program = fl.forall(i, fl.store(C[i], fl.coalesce(
        fl.access(A, fl.permit(i)),
        fl.access(B, fl.permit(fl.offset(i, len(a)))),
        0.0)), ext=(0, len(a) + len(b)))
    fl.execute(program)
    return C.to_numpy()


def convolve(a, filt):
    """1D convolution: B[i] += A[i + j - c] * F[j], edges zero-padded."""
    n, width = len(a), len(filt)
    center = width // 2
    A = fl.from_numpy(a, ("sparse",), name="A")
    F = fl.from_numpy(filt, ("dense",), name="F")
    B = fl.zeros(n, name="B")
    i, j = fl.indices("i", "j")
    body = fl.increment(B[i], fl.coalesce(
        fl.access(A, fl.permit(fl.offset(j, center - i))), 0.0) *
        fl.coalesce(fl.access(F, fl.permit(j)), 0.0))
    program = fl.forall(i, fl.forall(j, body, ext=(0, width)))
    fl.execute(program)
    return B.to_numpy()


def window_slice(a, lo, hi):
    """C[k] = A[lo:hi][k] — the slice as an index modifier."""
    A = fl.from_numpy(a, ("sparse",), name="A")
    C = fl.zeros(hi - lo, name="C")
    k = fl.indices("k")
    fl.execute(fl.forall(k, fl.store(C[k], fl.access(
        A, fl.window(k, lo, hi)))))
    return C.to_numpy()


def main():
    a = matrices.sparse_vector(12, density=0.4, seed=3)
    b = matrices.sparse_vector(7, density=0.4, seed=4)

    cat = concatenate(a, b)
    assert np.allclose(cat, np.concatenate([a, b]))
    print("concatenated:", np.round(cat, 2))

    filt = np.array([0.25, 0.5, 0.25])
    smoothed = convolve(a, filt)
    assert np.allclose(smoothed, np.convolve(a, filt[::-1], mode="same"))
    print("smoothed:   ", np.round(smoothed, 2))

    sliced = window_slice(a, 3, 9)
    assert np.allclose(sliced, a[3:9])
    print("slice [3:9]:", np.round(sliced, 2))


if __name__ == "__main__":
    main()
